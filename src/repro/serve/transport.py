"""AsyncioTransport: the live (TCP) implementation of the transport.

Implements the surface node code actually uses from
:class:`repro.net.transport.Transport` — ``register``, ``set_online``,
``is_online``, ``send``, ``count_unknown_kind``, the interceptor chain,
and the drop counters — over real sockets:

* every peer process gets one pooled outbound connection with a
  per-peer write queue; the writer task connects lazily, reconnects
  with capped exponential backoff, and drains the queue in order;
* messages are serialized with :func:`repro.proto.wire.encode_message`
  and framed by :mod:`repro.proto.framing` (kind tag, length prefix,
  crc32), so corruption and oversized frames are rejected at the
  envelope layer;
* messages addressed to a node registered *in this process* short-cut
  through the loop (scheduled, never inline) — the kernel-loopback
  case — while still passing the interceptor chain;
* the same :class:`~repro.net.transport.Interceptor` chain as the sim
  transport rules on every outgoing message, so :mod:`repro.faults`
  plans and :mod:`repro.obs` instrumentation work unchanged on live
  runs;
* :meth:`drain_and_close` flushes every write queue before closing —
  the graceful-shutdown path (bounded by a timeout).

Sim-vs-live fidelity note: the sim transport models a datagram service
(loss, no connections).  TCP gives in-order reliable delivery per peer;
what remains lossy is the *node* layer — messages to an offline or
crashed process are dropped after the send queue overflows or the
connection dies, counted in ``drops_by_reason``, exactly the failure
model the Seaweed protocols are built to recover from.
"""

from __future__ import annotations

import asyncio
import logging
from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Mapping, Optional

from repro.net.transport import (
    DROP_OFFLINE,
    DROP_UNKNOWN_KIND,
    DROP_UNREGISTERED,
    Handler,
    Interceptor,
    Message,
    run_interceptor_chain,
)
from repro.proto import framing, wire
from repro.serve.scheduler import AsyncioScheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.stats import BandwidthAccounting
    from repro.obs.observer import Observer

log = logging.getLogger("repro.serve.transport")

#: Drop reason: the per-peer write queue overflowed (slow/absent peer).
DROP_BACKPRESSURE = "backpressure"
#: Drop reason: the peer connection died with messages in flight.
DROP_CONNECTION = "connection"
#: Drop reason: no listen address is known for the destination.
DROP_UNRESOLVED = "unresolved"
#: Drop reason: a peer sent a frame that failed envelope validation.
DROP_BAD_FRAME = "bad_frame"


class _Peer:
    """One pooled outbound connection with its ordered write queue."""

    def __init__(self, transport: "AsyncioTransport", name_key: str,
                 host: str, port: int) -> None:
        self.transport = transport
        self.name_key = name_key
        self.host = host
        self.port = port
        self.queue: deque[bytes] = deque()
        self.wakeup = asyncio.Event()
        self.connected = False
        self.closing = False
        self.task = asyncio.get_event_loop().create_task(self._run())

    @property
    def depth(self) -> int:
        return len(self.queue)

    def enqueue(self, data: bytes) -> bool:
        """Queue one encoded frame; False if the queue is full."""
        if len(self.queue) >= self.transport.max_queue_depth:
            return False
        self.queue.append(data)
        self.wakeup.set()
        return True

    async def _run(self) -> None:
        backoff = self.transport.reconnect_initial
        writer: Optional[asyncio.StreamWriter] = None
        try:
            while not self.closing:
                if writer is None:
                    try:
                        _, writer = await asyncio.open_connection(
                            self.host, self.port
                        )
                    except OSError:
                        self.connected = False
                        await self._sleep(backoff)
                        backoff = min(
                            backoff * 2, self.transport.reconnect_cap
                        )
                        continue
                    self.connected = True
                    backoff = self.transport.reconnect_initial
                    self.transport._note_connections()
                if not self.queue:
                    self.wakeup.clear()
                    if self.closing:
                        break
                    await self.wakeup.wait()
                    continue
                data = self.queue[0]
                try:
                    writer.write(data)
                    await writer.drain()
                except (ConnectionError, OSError):
                    # The frame at the queue head may be lost; drop it and
                    # reconnect (datagram semantics, as the protocols expect).
                    if self.queue:
                        self.queue.popleft()
                    self.transport._count_peer_drop(self.name_key, DROP_CONNECTION)
                    self.connected = False
                    writer = None
                    self.transport._note_connections()
                    continue
                if self.queue:
                    self.queue.popleft()
        finally:
            self.connected = False
            if writer is not None:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
            self.transport._note_connections()

    async def _sleep(self, seconds: float) -> None:
        try:
            await asyncio.wait_for(self.wakeup.wait(), timeout=seconds)
            self.wakeup.clear()
        except asyncio.TimeoutError:
            pass

    async def drain(self, timeout: float) -> bool:
        """Wait until the queue is empty (or ``timeout``); True if drained."""
        deadline = asyncio.get_event_loop().time() + timeout
        while self.queue and asyncio.get_event_loop().time() < deadline:
            await asyncio.sleep(0.02)
        return not self.queue

    async def close(self) -> None:
        self.closing = True
        self.wakeup.set()
        try:
            await self.task
        except asyncio.CancelledError:
            pass


class AsyncioTransport:
    """Live transport: the sim transport's interface over TCP sockets."""

    def __init__(
        self,
        scheduler: AsyncioScheduler,
        directory: Mapping[str, tuple[str, int]],
        listen_host: str = "127.0.0.1",
        listen_port: int = 0,
        accounting: Optional["BandwidthAccounting"] = None,
        observer: Optional["Observer"] = None,
        max_frame: int = framing.DEFAULT_MAX_FRAME,
        max_queue_depth: int = 4096,
        reconnect_initial: float = 0.1,
        reconnect_cap: float = 5.0,
        on_peer_activity: Optional[Callable[[str, float], None]] = None,
    ) -> None:
        self.scheduler = scheduler
        #: node name -> (host, port) of the process hosting it.
        self.directory = dict(directory)
        self.listen_host = listen_host
        self.listen_port = listen_port
        self.accounting = accounting
        self.max_frame = max_frame
        self.max_queue_depth = max_queue_depth
        self.reconnect_initial = reconnect_initial
        self.reconnect_cap = reconnect_cap
        #: Called with (src name, protocol now) for every inbound message —
        #: the live failure detector's evidence stream.
        self.on_peer_activity = on_peer_activity
        self._handlers: dict[str, Handler] = {}
        self._online: dict[str, bool] = {}
        self._peers: dict[tuple[str, int], _Peer] = {}
        self._inbound: set[asyncio.StreamWriter] = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._interceptors: list[Interceptor] = []
        self.dropped_offline = 0
        self.dropped_loss = 0
        self.dropped_unregistered = 0
        self.dropped_unknown_kind = 0
        self.drops_by_reason: dict[str, int] = {}
        self.messages_sent = 0
        self.messages_received = 0
        self.bytes_sent = 0
        self._obs = observer if (observer is not None and observer.enabled) else None
        if self._obs is not None:
            metrics = self._obs.metrics
            self._c_messages = metrics.counter("transport.messages_total")
            self._c_bytes = metrics.counter("transport.bytes_total")
            self._c_category: dict[str, Any] = {}
            self._g_connections = metrics.gauge("serve.connections")
            self._g_queue_depth = metrics.gauge("serve.write_queue_depth")
        else:
            self._c_messages = None
            self._c_bytes = None
            self._c_category = {}
            self._g_connections = None
            self._g_queue_depth = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Start the listening server; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._serve_connection, self.listen_host, self.listen_port
        )
        sockname = self._server.sockets[0].getsockname()
        self.listen_host, self.listen_port = sockname[0], sockname[1]
        return self.listen_host, self.listen_port

    async def drain_and_close(self, timeout: float = 5.0) -> bool:
        """Flush write queues, then close every connection and the server.

        Returns True if every queue drained within ``timeout``.
        """
        drained = True
        for peer in list(self._peers.values()):
            drained = await peer.drain(timeout) and drained
        for peer in list(self._peers.values()):
            await peer.close()
        self._peers.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Close inbound connections so their handler tasks exit on EOF
        # instead of being cancelled at loop teardown.
        for writer in list(self._inbound):
            writer.close()
        self._inbound.clear()
        self._note_connections()
        return drained

    # ------------------------------------------------------------------
    # Interceptor chain (same contract as the sim transport)
    # ------------------------------------------------------------------

    def add_interceptor(self, interceptor: Interceptor) -> None:
        """Append an interceptor to the chain (fault injection hook)."""
        self._interceptors.append(interceptor)

    def remove_interceptor(self, interceptor: Interceptor) -> None:
        """Remove a previously added interceptor.  Missing is a no-op."""
        try:
            self._interceptors.remove(interceptor)
        except ValueError:
            pass

    @property
    def interceptors(self) -> tuple[Interceptor, ...]:
        """The current interceptor chain (read-only view)."""
        return tuple(self._interceptors)

    # ------------------------------------------------------------------
    # Registration and liveness
    # ------------------------------------------------------------------

    def register(self, endsystem: str, handler: Handler) -> None:
        """Register the handler for a node hosted in this process."""
        self._handlers[endsystem] = handler
        self._online.setdefault(endsystem, False)

    def set_online(self, endsystem: str, online: bool) -> None:
        """Mark a locally hosted node up or down."""
        self._online[endsystem] = online

    def is_online(self, endsystem: str) -> bool:
        """Whether a locally hosted node is up (remote nodes: unknown)."""
        return self._online.get(endsystem, False)

    @property
    def connection_count(self) -> int:
        """Open outbound connections in the pool."""
        return sum(1 for peer in self._peers.values() if peer.connected)

    @property
    def write_queue_depth(self) -> int:
        """Messages waiting in outbound write queues."""
        return sum(peer.depth for peer in self._peers.values())

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send(self, src: str, dst: str, message: Message) -> None:
        """Send ``message`` from ``src`` to ``dst`` (sync, loop context).

        The interceptor chain rules first; surviving messages go to a
        local handler via the scheduler (never inline — preserving the
        sim's you-never-deliver-inside-send invariant) or onto the
        destination process's write queue.
        """
        message.src = src
        self._account(src, dst, message.wire_size, message.category)
        fate = run_interceptor_chain(
            self._interceptors, self.scheduler.now, src, dst, message,
            self._count_drop,
        )
        if fate is None:
            return
        extra_delay, duplications = fate
        copies = 1
        if duplications is not None:
            copies += sum(decision.duplicates for decision in duplications)
        for _ in range(copies):
            if extra_delay > 0:
                self.scheduler.schedule(extra_delay, self._dispatch, dst, message)
            else:
                self._dispatch(dst, message)

    def _dispatch(self, dst: str, message: Message) -> None:
        if dst in self._handlers:
            # Locally hosted node: loop-back without touching a socket.
            self.scheduler.schedule(0.0, self._deliver_local, dst, message)
            return
        address = self.directory.get(dst)
        if address is None:
            self._count_drop(dst, message, DROP_UNRESOLVED)
            return
        try:
            frame = wire.encode_message(
                message.kind,
                message.src,
                dst,
                message.category,
                message.size,
                message.meta,
                message.payload,
            )
        except wire.WireError:
            log.exception("cannot encode %s for %s", message.kind, dst)
            self._count_drop(dst, message, "unencodable")
            return
        data = frame.to_bytes()
        peer = self._peers.get(address)
        if peer is None:
            peer = self._peers[address] = _Peer(self, dst, *address)
        if not peer.enqueue(data):
            self._count_drop(dst, message, DROP_BACKPRESSURE)
            return
        self.messages_sent += 1
        self.bytes_sent += len(data)
        self._note_queue_depth()

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        decoder = framing.FrameDecoder(max_frame=self.max_frame)
        peername = writer.get_extra_info("peername")
        self._inbound.add(writer)
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break  # EOF: peer closed (possibly mid-frame; discard)
                try:
                    frames = decoder.feed(data)
                except framing.FrameError as error:
                    # Corrupt or oversized stream: count and cut the peer.
                    log.warning("bad frame from %s: %s", peername, error)
                    self._count_reason(DROP_BAD_FRAME)
                    break
                for frame in frames:
                    self._handle_frame(frame, peername)
        except (ConnectionError, OSError):
            pass  # peer crashed mid-stream; buffered partial frame discarded
        finally:
            self._inbound.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _handle_frame(self, frame: framing.Frame, peername: Any) -> None:
        try:
            wm = wire.decode_message(frame)
        except wire.WireError as error:
            log.warning("undecodable %r frame from %s: %s",
                        frame.kind, peername, error)
            self._count_reason(DROP_BAD_FRAME)
            return
        self.messages_received += 1
        if self.on_peer_activity is not None and wm.src:
            self.on_peer_activity(wm.src, self.scheduler.now)
        message = Message(
            kind=wm.kind,
            payload=wm.payload,
            size=wm.size,
            src=wm.src,
            category=wm.category,
            meta=wm.meta,
        )
        self._deliver_local(wm.dst, message)

    def _deliver_local(self, dst: str, message: Message) -> None:
        if not self._online.get(dst, False):
            self.dropped_offline += 1
            self._count_reason(DROP_OFFLINE)
            if self._obs is not None:
                self._obs.message_drop(
                    self.scheduler.now, dst, message.kind, DROP_OFFLINE
                )
            return
        handler = self._handlers.get(dst)
        if handler is None:
            self.dropped_unregistered += 1
            self._count_reason(DROP_UNREGISTERED)
            if self._obs is not None:
                self._obs.message_drop(
                    self.scheduler.now, dst, message.kind, DROP_UNREGISTERED
                )
            return
        try:
            handler(dst, message)
        except Exception:  # noqa: BLE001 - a handler must not kill the host
            log.exception("handler for %s failed on %s", dst, message.kind)

    def count_unknown_kind(self, dst: str, kind: str) -> None:
        """Record a delivered message whose kind no handler recognizes."""
        self.dropped_unknown_kind += 1
        self._count_reason(DROP_UNKNOWN_KIND)
        if self._obs is not None:
            self._obs.message_drop(self.scheduler.now, dst, kind, DROP_UNKNOWN_KIND)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def _account(self, src: str, dst: str, wire_size: int, category: str) -> None:
        if self.accounting is not None:
            self.accounting.record(self.scheduler.now, src, dst, wire_size, category)
        if self._obs is not None:
            self._c_messages.inc()
            self._c_bytes.inc(wire_size)
            by_category = self._c_category.get(category)
            if by_category is None:
                by_category = self._c_category[category] = (
                    self._obs.metrics.counter(
                        "transport.bytes_total", category=category
                    )
                )
            by_category.inc(wire_size)

    def _count_drop(self, dst: str, message: Message, reason: str) -> None:
        self._count_reason(reason)
        if self._obs is not None:
            self._obs.message_drop(self.scheduler.now, dst, message.kind, reason)

    def _count_peer_drop(self, dst: str, reason: str) -> None:
        self._count_reason(reason)

    def _count_reason(self, reason: str) -> None:
        self.drops_by_reason[reason] = self.drops_by_reason.get(reason, 0) + 1

    def _note_connections(self) -> None:
        if self._g_connections is not None:
            self._g_connections.set(self.connection_count)

    def _note_queue_depth(self) -> None:
        if self._g_queue_depth is not None:
            self._g_queue_depth.set(self.write_queue_depth)
