"""Cluster planning for live mode.

A :class:`ClusterSpec` is the single JSON document every host process
reads: which node ids each process hosts, where every process listens,
the dataset seed, and the config overrides.  Everything derived from it
is deterministic — two processes (or a test asserting ground truth)
reading the same spec reconstruct the same node ids and the same
per-node databases.
"""

from __future__ import annotations

import json
import socket
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.overlay.ids import id_to_hex, random_id

#: Profile pool size for live clusters (kept small: each host process
#: regenerates the full pool at startup).
DEFAULT_PROFILES = 8


@dataclass
class HostSpec:
    """One OS process: its listen addresses and the nodes it hosts."""

    index: int
    host: str
    port: int
    #: Client-facing query service port (0 = no service on this host).
    client_port: int
    node_ids: list[int]
    #: Dataset profile index per hosted node (parallel to ``node_ids``).
    profiles: list[int]


@dataclass
class ClusterSpec:
    """The full deterministic description of a live cluster."""

    hosts: list[HostSpec]
    #: Seed for node ids, profile generation, and profile assignment.
    seed: int = 0
    #: Profile pool size for the shared AnemoneDataset.
    num_profiles: int = DEFAULT_PROFILES
    #: SeaweedConfig field overrides applied by every host (flat fields
    #: only; ``overlay.<field>`` keys reach the OverlayConfig).
    config_overrides: dict = field(default_factory=dict)
    #: Protocol-time compression factor for the schedulers.
    time_scale: float = 1.0

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    def directory(self) -> dict[str, tuple[str, int]]:
        """node name -> (host, port) of the hosting process."""
        table: dict[str, tuple[str, int]] = {}
        for host in self.hosts:
            for node_id in host.node_ids:
                table[id_to_hex(node_id)] = (host.host, host.port)
        return table

    def all_node_ids(self) -> list[int]:
        """Every node id, in host order."""
        return [node_id for host in self.hosts for node_id in host.node_ids]

    def bootstrap_id(self) -> int:
        """The well-known bootstrap node: the first node of host 0."""
        return self.hosts[0].node_ids[0]

    def profile_of(self, node_id: int) -> int:
        """The dataset profile assigned to ``node_id``."""
        for host in self.hosts:
            for hosted, profile in zip(host.node_ids, host.profiles):
                if hosted == node_id:
                    return profile
        raise KeyError(f"node {node_id:032x} not in spec")

    def make_dataset(self):
        """The shared profile pool (deterministic from the seed)."""
        from repro.workload.anemone import AnemoneDataset

        return AnemoneDataset(
            num_profiles=self.num_profiles,
            rng=np.random.default_rng(self.seed + 1),
        )

    def ground_truth(self, sql: str, now: Optional[float] = None):
        """The exact full-population answer for ``sql``.

        Runs the query against every node's database and merges — what a
        complete (completeness 1.0) live run must converge to.
        """
        dataset = self.make_dataset()
        merged = None
        for host in self.hosts:
            for profile in host.profiles:
                result = dataset.database(profile).execute_sql(sql, now=now)
                merged = result if merged is None else merged.merge(result)
        return merged

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "num_profiles": self.num_profiles,
                "config_overrides": self.config_overrides,
                "time_scale": self.time_scale,
                "hosts": [
                    {
                        "index": h.index,
                        "host": h.host,
                        "port": h.port,
                        "client_port": h.client_port,
                        "node_ids": [id_to_hex(n) for n in h.node_ids],
                        "profiles": h.profiles,
                    }
                    for h in self.hosts
                ],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "ClusterSpec":
        data = json.loads(text)
        hosts = [
            HostSpec(
                index=h["index"],
                host=h["host"],
                port=h["port"],
                client_port=h["client_port"],
                node_ids=[int(n, 16) for n in h["node_ids"]],
                profiles=list(h["profiles"]),
            )
            for h in data["hosts"]
        ]
        return cls(
            hosts=hosts,
            seed=data["seed"],
            num_profiles=data["num_profiles"],
            config_overrides=data.get("config_overrides", {}),
            time_scale=data.get("time_scale", 1.0),
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "ClusterSpec":
        with open(path, encoding="utf-8") as handle:
            return cls.from_json(handle.read())


def free_port(host: str = "127.0.0.1") -> int:
    """An OS-assigned free TCP port (racy by nature; fine for local demos)."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


#: Demo-friendly protocol timing: the sim defaults were tuned for
#: simulated days, a live demo wants answers in seconds.
DEMO_OVERRIDES = {
    "vertex_forward_delay": 0.2,
    "predictor_reply_timeout": 3.0,
    "predictor_heartbeat": 1.0,
    "predictor_retry_interval": 4.0,
    "result_retransmit": 3.0,
    "result_refresh_period": 10.0,
    "summary_push_period": 30.0,
    "overlay.stabilize_period": 15.0,
    "overlay.heartbeat_period": 10.0,
}


def plan_cluster(
    num_hosts: int,
    nodes_per_host: int = 1,
    host: str = "127.0.0.1",
    seed: int = 0,
    num_profiles: int = DEFAULT_PROFILES,
    config_overrides: Optional[dict] = None,
    time_scale: float = 1.0,
    base_port: int = 0,
) -> ClusterSpec:
    """Lay out a local cluster: ids, profiles, ports.

    With ``base_port=0`` every port is OS-assigned (fresh free ports);
    otherwise ports are allocated sequentially from ``base_port``.
    """
    if num_hosts < 1 or nodes_per_host < 1:
        raise ValueError("need at least one host and one node per host")
    rng = np.random.default_rng(seed)
    total = num_hosts * nodes_per_host
    ids: set[int] = set()
    while len(ids) < total:
        ids.add(random_id(rng))
    node_ids = sorted(ids)
    rng.shuffle(node_ids)  # type: ignore[arg-type]
    profiles = [int(p) for p in rng.integers(0, num_profiles, size=total)]
    overrides = dict(DEMO_OVERRIDES)
    if config_overrides:
        overrides.update(config_overrides)
    hosts = []
    next_port = base_port
    for index in range(num_hosts):
        if base_port:
            port, client_port = next_port, next_port + 1
            next_port += 2
        else:
            port, client_port = free_port(host), free_port(host)
        lo = index * nodes_per_host
        hi = lo + nodes_per_host
        hosts.append(
            HostSpec(
                index=index,
                host=host,
                port=port,
                client_port=client_port,
                node_ids=node_ids[lo:hi],
                profiles=profiles[lo:hi],
            )
        )
    return ClusterSpec(
        hosts=hosts,
        seed=seed,
        num_profiles=num_profiles,
        config_overrides=overrides,
        time_scale=time_scale,
    )
