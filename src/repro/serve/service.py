"""The client-facing SQL front-end of a live host.

Speaks a line-delimited JSON protocol over TCP.  A client sends one
request object per line; for queries the service streams events back as
the in-network aggregation converges:

``{"op": "ping"}``
    ``{"event": "pong", "ready": <bool>, "nodes": <online count>}``

``{"op": "query", "sql": ..., "timeout": 30, "poll": 0.25,
   "target": 1.0, "lifetime": 172800}``
    * ``{"event": "accepted", "query_id": "<hex>", "node": "<hex>"}``
    * ``{"event": "partial", "rows": N, "completeness": c,
        "predicted": p, "values": [...], "elapsed": t}`` — streamed as
      results aggregate.  ``completeness`` is the observed fraction of
      the predictor's expected total, clamped to be monotonically
      non-decreasing over the stream; ``predicted`` is the predictor's
      *a-priori* completeness-vs-delay curve evaluated at the same
      elapsed time (null until the predictor arrives).
    * ``{"event": "final", ...}`` — same shape, emitted once when the
      observed completeness reaches ``target`` or ``timeout`` (protocol
      seconds) elapses.  The query is then cancelled cluster-wide
      (epidemic tombstones): nobody reads rows past the final event, so
      a finished stream must not leave periodic repair traffic behind
      for the rest of the query lifetime.

``{"op": "cancel", "query_id": "<hex>"}``
    ``{"event": "cancelled", "query_id": "<hex>"}``

Errors are reported as ``{"event": "error", "error": ...}`` and leave
the connection open for further requests.
"""

from __future__ import annotations

import asyncio
import json
import logging
from typing import TYPE_CHECKING, Any, Optional

from repro.core.query import QueryStatus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.node import SeaweedNode
    from repro.serve.host import NodeHost

log = logging.getLogger("repro.serve.service")

#: How long a query request waits for a local node to finish joining.
READY_TIMEOUT = 30.0

#: Observed completeness at which a query is considered answered.
DEFAULT_TARGET = 0.999

DEFAULT_TIMEOUT = 60.0
DEFAULT_POLL = 0.25
MAX_REQUEST_BYTES = 1 << 20


def _status_payload(
    status: QueryStatus, completeness: float, predicted: Optional[float],
    elapsed: float,
) -> dict[str, Any]:
    payload: dict[str, Any] = {
        "rows": status.rows_processed,
        "completeness": round(completeness, 6),
        "predicted": None if predicted is None else round(predicted, 6),
        "elapsed": round(elapsed, 3),
        "values": None,
        "groups": None,
    }
    result = status.result
    if result is not None:
        if result.states:
            payload["values"] = result.values()
        if result.groups:
            payload["groups"] = {
                "|".join(str(part) for part in key): values
                for key, values in result.group_values().items()
            }
        if result.rows and not result.states:
            payload["projected_rows"] = len(result.rows)
    return payload


class QueryService:
    """Streams completeness-annotated query results to TCP clients."""

    def __init__(
        self, host: "NodeHost", listen_host: str, listen_port: int
    ) -> None:
        self.host = host
        self.listen_host = listen_host
        self.listen_port = listen_port
        self._server: Optional[asyncio.AbstractServer] = None
        self.queries_served = 0

    async def start(self) -> tuple[str, int]:
        self._server = await asyncio.start_server(
            self._serve_connection,
            self.listen_host,
            self.listen_port,
            limit=MAX_REQUEST_BYTES,
        )
        sockname = self._server.sockets[0].getsockname()
        self.listen_host, self.listen_port = sockname[0], sockname[1]
        return self.listen_host, self.listen_port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise ValueError("request must be a JSON object")
                except ValueError as error:
                    await self._emit(writer, {"event": "error",
                                              "error": str(error)})
                    continue
                await self._handle_request(request, writer)
        except (ConnectionError, asyncio.LimitOverrunError, OSError):
            pass  # client went away mid-stream
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_request(
        self, request: dict, writer: asyncio.StreamWriter
    ) -> None:
        op = request.get("op", "query" if "sql" in request else None)
        if op == "ping":
            online = sum(
                1 for node in self.host.nodes.values() if node.pastry.online
            )
            await self._emit(
                writer, {"event": "pong", "ready": online > 0, "nodes": online}
            )
        elif op == "query":
            await self._run_query(request, writer)
        elif op == "cancel":
            await self._cancel(request, writer)
        else:
            await self._emit(
                writer,
                {"event": "error", "error": f"unknown op {op!r}"},
            )

    async def _emit(self, writer: asyncio.StreamWriter, event: dict) -> None:
        writer.write(json.dumps(event, separators=(",", ":")).encode() + b"\n")
        await writer.drain()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    async def _pick_node(self) -> Optional["SeaweedNode"]:
        """A joined local node, waiting briefly during cluster warm-up."""
        deadline = asyncio.get_event_loop().time() + READY_TIMEOUT
        while True:
            node = self.host.any_online_node()
            if node is not None:
                return node
            if asyncio.get_event_loop().time() >= deadline:
                return None
            await asyncio.sleep(0.1)

    async def _run_query(
        self, request: dict, writer: asyncio.StreamWriter
    ) -> None:
        sql = request.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            await self._emit(writer, {"event": "error",
                                      "error": "missing sql"})
            return
        timeout = float(request.get("timeout", DEFAULT_TIMEOUT))
        poll = max(0.02, float(request.get("poll", DEFAULT_POLL)))
        target = float(request.get("target", DEFAULT_TARGET))
        lifetime = float(request.get("lifetime", 48 * 3600.0))
        # Validate the SQL up front: dissemination parses lazily inside
        # scheduled handlers, which would turn a typo into a silent
        # zero-row timeout instead of an error the client can act on.
        try:
            from repro.db.sql import parse as parse_sql

            parse_sql(sql)
        except Exception as error:  # noqa: BLE001 - report, don't crash
            await self._emit(writer, {"event": "error",
                                      "error": f"bad sql: {error}"})
            return
        node = await self._pick_node()
        if node is None:
            await self._emit(writer, {"event": "error",
                                      "error": "no node online"})
            return
        scheduler = node.sim
        injected_at = scheduler.now
        try:
            descriptor = node.inject_query(sql, lifetime=lifetime)
        except Exception as error:  # noqa: BLE001 - surface parse errors
            await self._emit(writer, {"event": "error", "error": str(error)})
            return
        self.queries_served += 1
        query_id = descriptor.query_id
        await self._emit(writer, {
            "event": "accepted",
            "query_id": format(query_id, "032x"),
            "node": node.pastry.name,
        })
        # Stream partials until the observed completeness hits the target
        # or the (protocol-time) deadline passes.  The streamed
        # completeness never decreases: late predictor refinements can
        # shrink the instantaneous estimate, but a client has already
        # *seen* the rows behind the previous figure.
        high_water = 0.0
        last_rows = -1
        try:
            while True:
                await asyncio.sleep(poll)
                elapsed = scheduler.now - injected_at
                status = node.query_statuses.get(query_id)
                if status is None:  # cancelled under us
                    break
                predictor = status.predictor
                high_water = max(high_water, status.observed_completeness())
                predicted = (
                    predictor.completeness_at(elapsed)
                    if predictor is not None else None
                )
                done = (
                    (predictor is not None and high_water >= target)
                    or elapsed >= timeout
                )
                if done:
                    final = {"event": "final",
                             "query_id": format(query_id, "032x")}
                    final.update(
                        _status_payload(status, high_water, predicted, elapsed)
                    )
                    await self._emit(writer, final)
                    return
                if status.rows_processed != last_rows:
                    last_rows = status.rows_processed
                    partial = {"event": "partial",
                               "query_id": format(query_id, "032x")}
                    partial.update(
                        _status_payload(status, high_water, predicted, elapsed)
                    )
                    await self._emit(writer, partial)
            await self._emit(writer, {
                "event": "error",
                "error": "query cancelled",
                "query_id": format(query_id, "032x"),
            })
        finally:
            # The stream is the query's only consumer.  Once it ends —
            # final emitted, timed out, or the client went away — cancel
            # so the tombstone stops every node's periodic re-submission
            # of this query; otherwise each served query adds repair
            # traffic for its whole (default 48 h) lifetime and a
            # long-lived host degrades linearly in queries served.
            if node.query_statuses.get(query_id) is not None:
                node.cancel_query(query_id)

    async def _cancel(
        self, request: dict, writer: asyncio.StreamWriter
    ) -> None:
        try:
            query_id = int(request.get("query_id", ""), 16)
        except (TypeError, ValueError):
            await self._emit(writer, {"event": "error",
                                      "error": "bad query_id"})
            return
        node = self.host.any_online_node()
        if node is not None:
            node.cancel_query(query_id)
        await self._emit(writer, {
            "event": "cancelled",
            "query_id": format(query_id, "032x"),
        })
