"""Spawn and supervise a local cluster of real host processes.

:class:`LocalCluster` writes the :class:`~repro.serve.cluster.ClusterSpec`
to disk and launches one ``python -m repro serve`` process per host —
the harness behind the ``serve-smoke`` CI job and the live-cluster
integration tests::

    spec = plan_cluster(num_hosts=4, nodes_per_host=2, seed=7)
    with LocalCluster(spec, workdir="/tmp/cluster") as cluster:
        cluster.wait_ready()
        final = run_query(*cluster.client_address(0), "SELECT COUNT(*) ...")
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import socket
import subprocess
import sys
import time
from typing import Optional

from repro.serve.cluster import ClusterSpec

#: Grace between SIGTERM and SIGKILL at shutdown.
TERM_GRACE = 5.0


def _ping(host: str, port: int, timeout: float = 1.0) -> Optional[dict]:
    """Synchronous service ping; None if unreachable/not ready."""
    try:
        with socket.create_connection((host, port), timeout=timeout) as sock:
            sock.settimeout(timeout)
            sock.sendall(b'{"op":"ping"}\n')
            with sock.makefile("r", encoding="utf-8") as lines:
                line = lines.readline()
        return json.loads(line) if line else None
    except (OSError, ValueError):
        return None


class ClusterError(RuntimeError):
    """A host process died or the cluster failed to become ready."""


class LocalCluster:
    """A cluster of real OS processes on this machine."""

    def __init__(
        self,
        spec: ClusterSpec,
        workdir: str,
        python: str = sys.executable,
        metrics: bool = False,
    ) -> None:
        self.spec = spec
        self.workdir = pathlib.Path(workdir)
        self.python = python
        self.metrics = metrics
        self.processes: list[subprocess.Popen] = []
        self.spec_path = self.workdir / "cluster.json"

    def __enter__(self) -> "LocalCluster":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # ------------------------------------------------------------------

    def client_address(self, host_index: int = 0) -> tuple[str, int]:
        host = self.spec.hosts[host_index]
        return host.host, host.client_port

    def metrics_path(self, host_index: int) -> pathlib.Path:
        return self.workdir / f"metrics-{host_index}.jsonl"

    def start(self) -> None:
        """Write the spec and spawn one process per host."""
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.spec.save(str(self.spec_path))
        env = dict(os.environ)
        src = pathlib.Path(__file__).resolve().parents[2]
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [str(src), env.get("PYTHONPATH")])
        )
        for host in self.spec.hosts:
            command = [
                self.python, "-m", "repro", "serve",
                "--spec", str(self.spec_path),
                "--index", str(host.index),
            ]
            if self.metrics:
                command += ["--metrics-out", str(self.metrics_path(host.index))]
            log_path = self.workdir / f"host-{host.index}.log"
            with open(log_path, "ab") as log_file:
                process = subprocess.Popen(
                    command,
                    env=env,
                    stdout=log_file,
                    stderr=subprocess.STDOUT,
                    cwd=str(self.workdir),
                )
            self.processes.append(process)

    def wait_ready(self, timeout: float = 60.0, settle: float = 0.0) -> None:
        """Block until every host reports all of its nodes joined.

        ``settle`` then sleeps a further grace period — freshly joined
        nodes still need a couple of seconds to push their metadata
        before predictors cover the whole population.
        """
        deadline = time.monotonic() + timeout
        pending = {host.index: host for host in self.spec.hosts
                   if host.client_port}
        while pending:
            if time.monotonic() > deadline:
                raise ClusterError(
                    f"hosts not ready after {timeout:.0f}s: "
                    f"{sorted(pending)} (see {self.workdir}/host-*.log)"
                )
            for index, process in enumerate(self.processes):
                if process.poll() is not None:
                    raise ClusterError(
                        f"host {index} exited with {process.returncode} "
                        f"(see {self.workdir}/host-{index}.log)"
                    )
            for index, host in list(pending.items()):
                pong = _ping(host.host, host.client_port)
                if pong and pong.get("nodes", 0) >= len(host.node_ids):
                    del pending[index]
            if pending:
                time.sleep(0.2)
        if settle > 0:
            time.sleep(settle)

    def stop(self) -> None:
        """SIGTERM every host, escalating to SIGKILL after a grace period."""
        for process in self.processes:
            if process.poll() is None:
                try:
                    process.send_signal(signal.SIGTERM)
                except OSError:
                    pass
        deadline = time.monotonic() + TERM_GRACE
        for process in self.processes:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
        self.processes.clear()
