"""A small labeled-series metrics registry.

Three instrument types, in the Prometheus tradition but dependency-free:

* :class:`Counter` — a monotonically increasing total;
* :class:`Gauge` — a point-in-time value that can move both ways;
* :class:`Histogram` — counts of observations bucketed by fixed bounds.

Series are keyed by ``(name, labels)``; instruments are get-or-created
through the :class:`MetricsRegistry` and then held directly by the
instrumented code, so a hot-path increment is one attribute add with no
registry lookup.  The registry can snapshot everything to a plain dict
(for ``SeaweedSystem.metrics_snapshot()``) and export one JSON object
per series to a JSONL file.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Iterator, Optional, Union

#: Default histogram bounds: wall-clock-ish latencies in seconds.
DEFAULT_BOUNDS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelItems = tuple[tuple[str, str], ...]


class Counter:
    """A monotone counter.  ``inc`` is the only mutator."""

    __slots__ = ("value",)

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """A value that can be set, raised, and lowered."""

    __slots__ = ("value",)

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        """Raise the gauge by ``amount``."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Lower the gauge by ``amount``."""
        self.value -= amount


class Histogram:
    """Observation counts bucketed by fixed upper bounds.

    ``counts[i]`` counts observations ``<= bounds[i]``; the final slot
    counts the overflow (``+Inf`` bucket).  ``sum``/``count`` give the
    mean; ``max`` is kept exactly because tail latencies are the point.
    """

    __slots__ = ("bounds", "counts", "count", "sum", "max")

    kind = "histogram"

    def __init__(self, bounds: Iterable[float] = DEFAULT_BOUNDS) -> None:
        self.bounds = tuple(sorted(bounds))
        if not self.bounds:
            raise ValueError("histogram needs at least one bound")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.sum += value
        if value > self.max:
            self.max = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (0–1) from bucket midpoints."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        running = 0
        for index, bucket_count in enumerate(self.counts):
            running += bucket_count
            if running >= target:
                if index >= len(self.bounds):
                    return self.max
                return self.bounds[index]
        return self.max

    def to_dict(self) -> dict:
        """Snapshot the histogram state."""
        buckets = {f"le_{bound:g}": count
                   for bound, count in zip(self.bounds, self.counts)}
        buckets["le_inf"] = self.counts[-1]
        return {"count": self.count, "sum": self.sum, "max": self.max,
                "buckets": buckets}


Instrument = Union[Counter, Gauge, Histogram]


def _label_items(labels: dict[str, object]) -> LabelItems:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


def series_name(name: str, labels: LabelItems) -> str:
    """Flat display name for one series: ``name{k=v,...}``."""
    if not labels:
        return name
    inner = ",".join(f"{key}={value}" for key, value in labels)
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Get-or-create registry of labeled metric series."""

    def __init__(self) -> None:
        self._series: dict[tuple[str, LabelItems], Instrument] = {}

    def counter(self, name: str, **labels: object) -> Counter:
        """The counter series ``name{labels}`` (created on first use)."""
        key = (name, _label_items(labels))
        instrument = self._series.get(key)
        if instrument is None:
            instrument = self._series[key] = Counter()
        if not isinstance(instrument, Counter):
            raise TypeError(f"metric {name!r} is a {instrument.kind}, not a counter")
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge series ``name{labels}`` (created on first use)."""
        key = (name, _label_items(labels))
        instrument = self._series.get(key)
        if instrument is None:
            instrument = self._series[key] = Gauge()
        if not isinstance(instrument, Gauge):
            raise TypeError(f"metric {name!r} is a {instrument.kind}, not a gauge")
        return instrument

    def histogram(
        self,
        name: str,
        bounds: Optional[Iterable[float]] = None,
        **labels: object,
    ) -> Histogram:
        """The histogram series ``name{labels}`` (created on first use)."""
        key = (name, _label_items(labels))
        instrument = self._series.get(key)
        if instrument is None:
            instrument = Histogram(bounds if bounds is not None else DEFAULT_BOUNDS)
            self._series[key] = instrument
        if not isinstance(instrument, Histogram):
            raise TypeError(f"metric {name!r} is a {instrument.kind}, not a histogram")
        return instrument

    def __len__(self) -> int:
        return len(self._series)

    def series(self) -> Iterator[tuple[str, LabelItems, Instrument]]:
        """Iterate ``(name, labels, instrument)`` over all series."""
        for (name, labels), instrument in sorted(self._series.items()):
            yield name, labels, instrument

    def snapshot(self) -> dict:
        """All series as a plain dict, grouped by instrument kind.

        Counters and gauges map flat series names to values; histograms
        map to their :meth:`Histogram.to_dict` state.
        """
        snap: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, labels, instrument in self.series():
            flat = series_name(name, labels)
            if isinstance(instrument, Counter):
                snap["counters"][flat] = instrument.value
            elif isinstance(instrument, Gauge):
                snap["gauges"][flat] = instrument.value
            else:
                snap["histograms"][flat] = instrument.to_dict()
        return snap

    def write_jsonl(self, destination: Union[str, IO[str]]) -> int:
        """Write one JSON object per series to ``destination``.

        ``destination`` may be a path or an open text file.  Returns the
        number of series written.
        """
        if isinstance(destination, str):
            with open(destination, "w", encoding="utf-8") as handle:
                return self.write_jsonl(handle)
        written = 0
        for name, labels, instrument in self.series():
            record: dict[str, object] = {
                "type": instrument.kind,
                "name": name,
                "labels": dict(labels),
            }
            if isinstance(instrument, Histogram):
                record.update(instrument.to_dict())
            else:
                record["value"] = instrument.value
            destination.write(json.dumps(record, separators=(",", ":")) + "\n")
            written += 1
        return written
