"""The Observer: one object carrying metrics, tracing, and profiling.

A single :class:`Observer` is threaded through the whole stack by
:class:`~repro.core.system.SeaweedSystem`: the transport, the overlay,
and every Seaweed node hold a reference and report protocol events
through the typed emitters below.  Each emitter bumps a pre-bound
metrics counter and, when a trace sink is attached, writes one
structured record keyed by query id / endsystem id.

Cost discipline:

* components store ``None`` instead of a disabled observer (see
  :func:`active`), so the fully-disabled hot path is one ``is None``
  check at the call site — no call, no allocation;
* emitters take positional arguments and check ``tracer.enabled``
  before building the record dict, so an enabled observer with a null
  trace sink pays only counter increments;
* node and query ids are rendered as 32-char hex (matching
  ``f"{query_id:032x}"`` elsewhere in the repo) only when a record is
  actually emitted.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import SimProfiler
from repro.obs.tracing import NULL_SINK, Tracer, TraceSink


def _hx(value: int) -> str:
    return format(value, "032x")


class Observer:
    """Aggregates a metrics registry, a tracer, and an optional profiler."""

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        trace_sink: Optional[TraceSink] = None,
        profile: bool = False,
        enabled: bool = True,
    ) -> None:
        self.enabled = enabled
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = Tracer(trace_sink if trace_sink is not None else NULL_SINK)
        self.profiler: Optional[SimProfiler] = SimProfiler() if profile else None
        m = self.metrics
        self._c_queries = m.counter("seaweed.queries_issued_total")
        self._c_cancels = m.counter("seaweed.queries_cancelled_total")
        self._c_hops = m.counter("seaweed.dissemination_hops_total")
        self._c_predictor = m.counter("seaweed.predictor_updates_total")
        self._c_flushes = m.counter("seaweed.aggregation_flushes_total")
        self._c_meta = m.counter("seaweed.metadata_pushes_total")
        self._c_repairs = m.counter("overlay.leafset_repairs_total")
        self._c_up = m.counter("endsystem.transitions_total", direction="up")
        self._c_down = m.counter("endsystem.transitions_total", direction="down")
        self._c_drops = {
            reason: m.counter("transport.dropped_total", reason=reason)
            for reason in ("loss", "offline", "unregistered", "unknown_kind")
        }
        self._c_faults: dict[str, object] = {}
        self._c_audit: dict[str, object] = {}
        self._c_batches = m.counter("transport.batches_flushed_total")
        self._c_coalesced = m.counter("transport.coalesced_messages_total")
        self._c_header_saved = m.counter("transport.header_bytes_saved_total")

    @classmethod
    def disabled(cls) -> "Observer":
        """An inert observer: components treat it exactly like ``None``."""
        return cls(enabled=False)

    @property
    def tracing(self) -> bool:
        """Whether trace records are being recorded."""
        return self.tracer.enabled

    def set_clock(self, clock: Callable[[], float]) -> None:
        """Bind the simulated-time source used by spans."""
        self.tracer.set_clock(clock)

    def close(self) -> None:
        """Flush and close the trace sink."""
        self.tracer.close()

    # ------------------------------------------------------------------
    # Typed event emitters (positional-only call sites, hot-path safe)
    # ------------------------------------------------------------------

    def query_issued(self, t: float, query_id: int, origin: int, sql: str) -> None:
        """A query was injected at its originating endsystem."""
        self._c_queries.inc()
        if self.tracer.enabled:
            self.tracer.event(
                t, "query_issued", query_id=_hx(query_id), node=_hx(origin), sql=sql
            )

    def query_cancelled(self, t: float, query_id: int, node: int) -> None:
        """A cancellation tombstone was installed at ``node``."""
        self._c_cancels.inc()
        if self.tracer.enabled:
            self.tracer.event(
                t, "query_cancelled", query_id=_hx(query_id), node=_hx(node)
            )

    def dissemination_hop(
        self, t: float, query_id: int, node: int, lo: int, hi: int, retries: int
    ) -> None:
        """A broadcast subrange was dispatched toward a child."""
        self._c_hops.inc()
        if self.tracer.enabled:
            self.tracer.event(
                t, "dissemination_hop", query_id=_hx(query_id), node=_hx(node),
                lo=_hx(lo), hi=_hx(hi), retries=retries,
            )

    def predictor_update(
        self, t: float, query_id: int, node: int, role: str, endsystems: int
    ) -> None:
        """A completeness predictor landed (``role``: root or origin)."""
        self._c_predictor.inc()
        if self.tracer.enabled:
            self.tracer.event(
                t, "predictor_update", query_id=_hx(query_id), node=_hx(node),
                role=role, endsystems=endsystems,
            )

    def aggregation_flush(
        self, t: float, query_id: int, vertex_id: int, node: int,
        root: bool, version: int, rows: int,
    ) -> None:
        """An aggregation vertex folded its children and pushed/published."""
        self._c_flushes.inc()
        if self.tracer.enabled:
            self.tracer.event(
                t, "aggregation_flush", query_id=_hx(query_id),
                vertex=_hx(vertex_id), node=_hx(node), root=root,
                version=version, rows=rows,
            )

    def metadata_push(self, t: float, node: int, replicas: int) -> None:
        """An endsystem pushed its metadata to its replica set."""
        self._c_meta.inc()
        if self.tracer.enabled:
            self.tracer.event(t, "metadata_push", node=_hx(node), replicas=replicas)

    def leafset_repair(self, t: float, node: int, dead: int) -> None:
        """A leafset member was declared dead and repair started."""
        self._c_repairs.inc()
        if self.tracer.enabled:
            self.tracer.event(t, "leafset_repair", node=_hx(node), dead=_hx(dead))

    def message_drop(self, t: float, dst: str, kind: str, reason: str) -> None:
        """A message was dropped in the transport (loss / dead host / fault)."""
        counter = self._c_drops.get(reason)
        if counter is None:
            # Fault injection introduces new drop reasons at run time
            # (e.g. "partition"); bind their counters lazily.
            counter = self.metrics.counter("transport.dropped_total", reason=reason)
            self._c_drops[reason] = counter
        counter.inc()
        if self.tracer.enabled:
            self.tracer.event(t, "message_drop", dst=dst, kind=kind, reason=reason)

    def batch_flush(
        self, t: float, src: str, dst: str, category: str,
        messages: int, wire_bytes: int,
    ) -> None:
        """A destination batch departed: one frame carrying ``messages``.

        ``messages`` counts every logical message that paid framing into
        the batch (including ones later dropped or delayed by
        interceptors); ``wire_bytes`` is the frame's accounted size.
        """
        self._c_batches.inc()
        if messages > 1:
            self._c_coalesced.inc(messages - 1)
        if self.tracer.enabled:
            self.tracer.event(
                t, "batch_flush", src=src, dst=dst, category=category,
                messages=messages, wire_bytes=wire_bytes,
            )

    def batch_header_saved(self, saved: int) -> None:
        """Header bytes avoided by coalescing (counter-only, no trace)."""
        self._c_header_saved.inc(saved)

    def fault_injected(self, t: float, kind: str, detail: str) -> None:
        """A declared fault event activated (window opened, burst fired)."""
        counter = self._c_faults.get(kind)
        if counter is None:
            counter = self.metrics.counter("faults.injected_total", kind=kind)
            self._c_faults[kind] = counter
        counter.inc()
        if self.tracer.enabled:
            self.tracer.event(t, "fault_injected", kind=kind, detail=detail)

    def audit_violation(
        self, t: float, check: str, query_id: int, detail: str
    ) -> None:
        """The ground-truth oracle observed a conformance violation."""
        counter = self._c_audit.get(check)
        if counter is None:
            # Audit checks are few and named at run time; bind lazily
            # like the fault-kind counters.
            counter = self.metrics.counter("audit.violations_total", check=check)
            self._c_audit[check] = counter
        counter.inc()
        if self.tracer.enabled:
            self.tracer.event(
                t, "audit_violation", check=check, query_id=_hx(query_id),
                detail=detail,
            )

    def audit_calibration(
        self, query_id: int, final_error: float, mean_abs_error: float
    ) -> None:
        """Predictor calibration for one audited query (gauges only).

        ``final_error`` is signed (predicted minus realized completeness
        at the audit end); ``mean_abs_error`` averages the absolute
        claim-vs-realized gap over every streamed root result.
        """
        query = _hx(query_id)[:8]
        self.metrics.gauge(
            "audit.predictor_calibration_final_error", query=query
        ).set(final_error)
        self.metrics.gauge(
            "audit.predictor_calibration_mean_abs_error", query=query
        ).set(mean_abs_error)

    def endsystem_up(self, t: float, node: int) -> None:
        """An endsystem became available and is (re)joining."""
        self._c_up.inc()
        if self.tracer.enabled:
            self.tracer.event(t, "endsystem_up", node=_hx(node))

    def endsystem_down(self, t: float, node: int) -> None:
        """An endsystem went down (fail-stop)."""
        self._c_down.inc()
        if self.tracer.enabled:
            self.tracer.event(t, "endsystem_down", node=_hx(node))


def active(observer: Optional[Observer]) -> Optional[Observer]:
    """Normalize an observer argument for hot-path storage.

    Returns ``observer`` if it exists and is enabled, else ``None``, so
    instrumented components guard with a bare ``is not None`` check.
    """
    if observer is not None and observer.enabled:
        return observer
    return None
