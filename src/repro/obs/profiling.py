"""Simulator profiling: where does wall-clock time go?

A :class:`SimProfiler` attached to a :class:`~repro.sim.simulator.Simulator`
receives one :meth:`record` call per executed event with the handler
label, the wall-clock seconds the callback took, and the event-queue
depth after the pop.  It aggregates per-handler totals plus queue-depth
statistics, so the hot handler types (and any queue growth) are visible
before anyone starts optimizing.

When no profiler is attached the simulator's event loop pays a single
``is None`` check per event — nothing else.
"""

from __future__ import annotations


class HandlerStats:
    """Aggregate wall-time statistics for one handler label."""

    __slots__ = ("count", "total_s", "max_s")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0

    def add(self, wall_s: float) -> None:
        self.count += 1
        self.total_s += wall_s
        if wall_s > self.max_s:
            self.max_s = wall_s

    @property
    def mean_s(self) -> float:
        """Mean wall seconds per invocation."""
        return self.total_s / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {"count": self.count, "total_s": self.total_s,
                "mean_s": self.mean_s, "max_s": self.max_s}


class SimProfiler:
    """Per-handler wall time and event-queue depth aggregator."""

    def __init__(self) -> None:
        self._handlers: dict[str, HandlerStats] = {}
        self.events = 0
        self.wall_total_s = 0.0
        self.queue_depth_sum = 0
        self.queue_depth_max = 0

    def record(self, label: str, wall_s: float, queue_depth: int) -> None:
        """Account one executed event (called by the simulator loop)."""
        stats = self._handlers.get(label)
        if stats is None:
            stats = self._handlers[label] = HandlerStats()
        stats.add(wall_s)
        self.events += 1
        self.wall_total_s += wall_s
        self.queue_depth_sum += queue_depth
        if queue_depth > self.queue_depth_max:
            self.queue_depth_max = queue_depth

    @property
    def queue_depth_mean(self) -> float:
        """Mean queue depth observed after each event pop."""
        return self.queue_depth_sum / self.events if self.events else 0.0

    def handler_stats(self, label: str) -> HandlerStats:
        """Stats for one handler label (KeyError if never seen)."""
        return self._handlers[label]

    def hottest(self, n: int = 10) -> list[tuple[str, HandlerStats]]:
        """The ``n`` handler labels with the most total wall time."""
        ranked = sorted(
            self._handlers.items(), key=lambda item: item[1].total_s, reverse=True
        )
        return ranked[:n]

    def snapshot(self) -> dict:
        """The whole profile as a plain dict (handlers sorted by total)."""
        return {
            "events": self.events,
            "wall_total_s": self.wall_total_s,
            "queue_depth_mean": self.queue_depth_mean,
            "queue_depth_max": self.queue_depth_max,
            "handlers": {
                label: stats.to_dict() for label, stats in self.hottest(n=len(self._handlers))
            },
        }

    def reset(self) -> None:
        """Drop all accumulated statistics."""
        self._handlers.clear()
        self.events = 0
        self.wall_total_s = 0.0
        self.queue_depth_sum = 0
        self.queue_depth_max = 0
