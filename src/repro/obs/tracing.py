"""Structured trace log with span support.

Every record is one flat dict: ``{"t": <simulated seconds>, "event":
<name>, ...fields}`` plus, inside a span, ``"span"``/``"parent"`` ids.
Records flow into a :class:`TraceSink`:

* :class:`NullSink` — tracing disabled.  The single shared
  :data:`NULL_SINK` instance has ``enabled = False``; instrumented call
  sites check that flag *before* building the record, so a disabled
  tracer costs one attribute read and allocates nothing.
* :class:`MemorySink` — in-process list, for tests and notebooks.
* :class:`JSONLSink` — one JSON object per line to a file, the
  interchange format of ``--trace-out``.

The :class:`Tracer` assigns span ids and tracks the current span stack
so nested spans record their parentage.  Span begin/end records carry
both simulated time (from the bound clock) and wall-clock duration.
"""

from __future__ import annotations

import json
from time import perf_counter
from typing import IO, Callable, Optional, Union


def _json_default(value: object) -> str:
    return str(value)


class TraceSink:
    """Interface: a destination for trace records."""

    enabled = True

    def emit(self, record: dict) -> None:
        """Consume one trace record."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources.  Idempotent."""


class NullSink(TraceSink):
    """Discards everything; ``enabled`` is False so callers skip work."""

    enabled = False

    def emit(self, record: dict) -> None:
        pass


#: The shared disabled sink.  ``Tracer(NULL_SINK)`` is zero-cost.
NULL_SINK = NullSink()


class MemorySink(TraceSink):
    """Collects records in a list (optionally bounded)."""

    def __init__(self, limit: Optional[int] = None) -> None:
        self.events: list[dict] = []
        self.dropped = 0
        self._limit = limit

    def emit(self, record: dict) -> None:
        if self._limit is not None and len(self.events) >= self._limit:
            self.dropped += 1
            return
        self.events.append(record)

    def of_kind(self, event: str) -> list[dict]:
        """All collected records with the given event name."""
        return [record for record in self.events if record.get("event") == event]


class JSONLSink(TraceSink):
    """Writes one compact JSON object per record to a file."""

    def __init__(self, destination: Union[str, IO[str]]) -> None:
        if isinstance(destination, str):
            self._handle: IO[str] = open(destination, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = destination
            self._owns_handle = False
        self.records_written = 0

    def emit(self, record: dict) -> None:
        self._handle.write(
            json.dumps(record, separators=(",", ":"), default=_json_default) + "\n"
        )
        self.records_written += 1

    def flush(self) -> None:
        """Flush the underlying file."""
        self._handle.flush()

    def close(self) -> None:
        if self._owns_handle and not self._handle.closed:
            self._handle.close()


def read_jsonl(path: str) -> list[dict]:
    """Load a JSONL trace file back into a list of records."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


class Span:
    """A traced interval; use via ``with tracer.span(...):``."""

    __slots__ = ("_tracer", "name", "fields", "span_id", "parent_id", "_wall_start")

    def __init__(self, tracer: "Tracer", name: str, fields: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.fields = fields
        self.span_id = -1
        self.parent_id: Optional[int] = None
        self._wall_start = 0.0

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self.span_id = tracer._next_span_id
        tracer._next_span_id += 1
        if tracer._stack:
            self.parent_id = tracer._stack[-1].span_id
        tracer._stack.append(self)
        self._wall_start = perf_counter()
        record = {"t": tracer.now(), "event": "span_begin", "name": self.name,
                  "span": self.span_id}
        if self.parent_id is not None:
            record["parent"] = self.parent_id
        record.update(self.fields)
        tracer.sink.emit(record)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        tracer = self._tracer
        if tracer._stack and tracer._stack[-1] is self:
            tracer._stack.pop()
        record = {"t": tracer.now(), "event": "span_end", "name": self.name,
                  "span": self.span_id,
                  "wall_s": perf_counter() - self._wall_start}
        if self.parent_id is not None:
            record["parent"] = self.parent_id
        if exc_type is not None:
            record["error"] = exc_type.__name__
        tracer.sink.emit(record)


class _NullSpan:
    """Shared no-op span returned when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Emits structured events and spans into a sink."""

    def __init__(
        self,
        sink: Optional[TraceSink] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.sink = sink if sink is not None else NULL_SINK
        self.now: Callable[[], float] = clock if clock is not None else (lambda: 0.0)
        self._next_span_id = 0
        self._stack: list[Span] = []

    @property
    def enabled(self) -> bool:
        """Whether the sink records anything."""
        return self.sink.enabled

    def set_clock(self, clock: Callable[[], float]) -> None:
        """Bind the simulated-time source (done by ``SeaweedSystem``)."""
        self.now = clock

    def event(self, t: float, name: str, **fields: object) -> None:
        """Emit one event at simulated time ``t``.

        Callers on hot paths should check :attr:`enabled` first so the
        keyword dict is never built when tracing is off; this method
        also guards, so cold paths may call unconditionally.
        """
        sink = self.sink
        if not sink.enabled:
            return
        record = {"t": t, "event": name}
        if self._stack:
            record["span"] = self._stack[-1].span_id
        record.update(fields)
        sink.emit(record)

    def span(self, name: str, **fields: object):
        """A context manager tracing an interval (no-op when disabled)."""
        if not self.sink.enabled:
            return _NULL_SPAN
        return Span(self, name, fields)

    def close(self) -> None:
        """Close the underlying sink."""
        self.sink.close()
