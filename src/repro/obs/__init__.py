"""Observability: metrics, structured tracing, and simulator profiling.

The measurement substrate for the whole reproduction:

* :mod:`repro.obs.metrics` — labeled counters/gauges/histograms with
  dict snapshots and JSONL export;
* :mod:`repro.obs.tracing` — structured simulated-time trace records
  (query lifecycle, dissemination hops, aggregation flushes, predictor
  updates, churn handling) with span support and a zero-cost null sink;
* :mod:`repro.obs.profiling` — per-handler wall-clock time and
  event-queue depth inside the discrete-event simulator;
* :mod:`repro.obs.observer` — the :class:`Observer` facade threaded
  through :class:`~repro.core.system.SeaweedSystem`.

Quick use::

    from repro.obs import JSONLSink, Observer

    obs = Observer(trace_sink=JSONLSink("trace.jsonl"), profile=True)
    system = SeaweedSystem(trace, dataset, observer=obs)
    ...
    print(system.metrics_snapshot()["profile"]["handlers"])
    obs.close()
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    series_name,
)
from repro.obs.observer import Observer, active
from repro.obs.profiling import HandlerStats, SimProfiler
from repro.obs.tracing import (
    JSONLSink,
    MemorySink,
    NULL_SINK,
    NullSink,
    Span,
    Tracer,
    TraceSink,
    read_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "series_name",
    "Observer",
    "active",
    "HandlerStats",
    "SimProfiler",
    "JSONLSink",
    "MemorySink",
    "NULL_SINK",
    "NullSink",
    "Span",
    "Tracer",
    "TraceSink",
    "read_jsonl",
]
