"""Pastry routing table: prefix-matched next hops.

Row ``r`` holds, for each digit value ``v``, a node whose id shares the
first ``r`` digits with the owner and has ``v`` as digit ``r``.  Routing a
key looks up row ``common_prefix_len(owner, key)`` at the key's next
digit, giving the expected ``O(log_2^b N)`` hop count.

Entries are learned opportunistically (from join messages and passing
traffic) and evicted lazily when a forward attempt fails — the MSPastry
approach.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.overlay.ids import common_prefix_len, digit, digits_per_id

#: Slot-cache miss sentinel (``None`` is a legitimate cached value).
_UNKNOWN: object = object()


class RoutingTable:
    """Per-node prefix routing state."""

    #: Bound on the per-instance slot memo (cleared wholesale when full).
    SLOT_CACHE_MAX = 1024

    def __init__(self, owner: int, b: int = 4) -> None:
        self.owner = owner
        self.b = b
        self.num_rows = digits_per_id(b)
        self.num_cols = 1 << b
        # Sparse storage: {(row, col): node_id}.  Most rows are empty in
        # practice (only log N rows are populated), so a dict beats a
        # dense 32x16 matrix.
        self._entries: dict[tuple[int, int], int] = {}
        # A node's slot is a pure function of (owner, b, node_id), and
        # add() runs on every delivered envelope for the same small set
        # of peers — memoize the digit arithmetic per instance.
        self._slot_cache: dict[int, Optional[tuple[int, int]]] = {}
        #: Bumped on every actual mutation; next-hop caches key on it.
        self.version = 0

    def _slot(self, node_id: int) -> Optional[tuple[int, int]]:
        cache = self._slot_cache
        slot = cache.get(node_id, _UNKNOWN)
        if slot is not _UNKNOWN:
            return slot
        if node_id == self.owner:
            slot = None
        else:
            row = common_prefix_len(self.owner, node_id, self.b)
            slot = (row, digit(node_id, row, self.b))
        if len(cache) >= self.SLOT_CACHE_MAX:
            cache.clear()
        cache[node_id] = slot
        return slot

    def add(self, node_id: int) -> bool:
        """Install ``node_id`` if its slot is empty.  Returns True if stored."""
        slot = self._slot(node_id)
        if slot is None:
            return False
        if slot in self._entries:
            return False
        self._entries[slot] = node_id
        self.version += 1
        return True

    def replace(self, node_id: int) -> None:
        """Install ``node_id``, overwriting any existing entry in its slot."""
        slot = self._slot(node_id)
        if slot is not None and self._entries.get(slot) != node_id:
            self._entries[slot] = node_id
            self.version += 1

    def remove(self, node_id: int) -> bool:
        """Evict a (presumed dead) entry.  Returns True if it was present."""
        slot = self._slot(node_id)
        if slot is None:
            return False
        if self._entries.get(slot) == node_id:
            del self._entries[slot]
            self.version += 1
            return True
        return False

    def lookup(self, key: int) -> Optional[int]:
        """The routing-table next hop for ``key``, if one exists.

        Returns the entry sharing a strictly longer prefix with ``key``
        than the owner does, per the Pastry routing rule.
        """
        row = common_prefix_len(self.owner, key, self.b)
        if row >= self.num_rows:
            return None  # key == owner
        col = digit(key, row, self.b)
        return self._entries.get((row, col))

    def closer_candidates(self, key: int) -> Iterator[int]:
        """Fallback candidates: entries sharing at least the owner's prefix.

        Used by the rare-case rule when the exact slot is empty: any known
        node numerically closer to the key than the owner may be used.
        """
        row = common_prefix_len(self.owner, key, self.b)
        for (entry_row, _), node_id in self._entries.items():
            if entry_row >= row:
                yield node_id

    def entries(self) -> list[int]:
        """All stored node ids."""
        return list(self._entries.values())

    def row_entries(self, row: int) -> list[int]:
        """Entries in a single row (used to seed a joining node's table)."""
        return [
            node_id
            for (entry_row, _), node_id in self._entries.items()
            if entry_row == row
        ]

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, node_id: int) -> bool:
        slot = self._slot(node_id)
        return slot is not None and self._entries.get(slot) == node_id
