"""Pastry routing table: prefix-matched next hops.

Row ``r`` holds, for each digit value ``v``, a node whose id shares the
first ``r`` digits with the owner and has ``v`` as digit ``r``.  Routing a
key looks up row ``common_prefix_len(owner, key)`` at the key's next
digit, giving the expected ``O(log_2^b N)`` hop count.

Entries are learned opportunistically (from join messages and passing
traffic) and evicted lazily when a forward attempt fails — the MSPastry
approach.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.overlay.ids import common_prefix_len, digit, digits_per_id


class RoutingTable:
    """Per-node prefix routing state."""

    def __init__(self, owner: int, b: int = 4) -> None:
        self.owner = owner
        self.b = b
        self.num_rows = digits_per_id(b)
        self.num_cols = 1 << b
        # Sparse storage: {(row, col): node_id}.  Most rows are empty in
        # practice (only log N rows are populated), so a dict beats a
        # dense 32x16 matrix.
        self._entries: dict[tuple[int, int], int] = {}

    def _slot(self, node_id: int) -> Optional[tuple[int, int]]:
        if node_id == self.owner:
            return None
        row = common_prefix_len(self.owner, node_id, self.b)
        col = digit(node_id, row, self.b)
        return row, col

    def add(self, node_id: int) -> bool:
        """Install ``node_id`` if its slot is empty.  Returns True if stored."""
        slot = self._slot(node_id)
        if slot is None:
            return False
        if slot in self._entries:
            return False
        self._entries[slot] = node_id
        return True

    def replace(self, node_id: int) -> None:
        """Install ``node_id``, overwriting any existing entry in its slot."""
        slot = self._slot(node_id)
        if slot is not None:
            self._entries[slot] = node_id

    def remove(self, node_id: int) -> bool:
        """Evict a (presumed dead) entry.  Returns True if it was present."""
        slot = self._slot(node_id)
        if slot is None:
            return False
        if self._entries.get(slot) == node_id:
            del self._entries[slot]
            return True
        return False

    def lookup(self, key: int) -> Optional[int]:
        """The routing-table next hop for ``key``, if one exists.

        Returns the entry sharing a strictly longer prefix with ``key``
        than the owner does, per the Pastry routing rule.
        """
        row = common_prefix_len(self.owner, key, self.b)
        if row >= self.num_rows:
            return None  # key == owner
        col = digit(key, row, self.b)
        return self._entries.get((row, col))

    def closer_candidates(self, key: int) -> Iterator[int]:
        """Fallback candidates: entries sharing at least the owner's prefix.

        Used by the rare-case rule when the exact slot is empty: any known
        node numerically closer to the key than the owner may be used.
        """
        row = common_prefix_len(self.owner, key, self.b)
        for (entry_row, _), node_id in self._entries.items():
            if entry_row >= row:
                yield node_id

    def entries(self) -> list[int]:
        """All stored node ids."""
        return list(self._entries.values())

    def row_entries(self, row: int) -> list[int]:
        """Entries in a single row (used to seed a joining node's table)."""
        return [
            node_id
            for (entry_row, _), node_id in self._entries.items()
            if entry_row == row
        ]

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, node_id: int) -> bool:
        slot = self._slot(node_id)
        return slot is not None and self._entries.get(slot) == node_id
