"""Pastry leafset: the l/2 nearest neighbours on each side of the ring.

The leafset is the overlay's correctness backbone: routing terminates via
the leafset, replica sets are drawn from it, and its heartbeat protocol is
the failure detector for the whole system.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.overlay.ids import ID_MASK, cw_distance, ring_distance


class Leafset:
    """The ``l/2`` clockwise and counter-clockwise neighbours of a node."""

    def __init__(self, owner: int, size: int = 8) -> None:
        if size <= 0 or size % 2 != 0:
            raise ValueError(f"leafset size must be positive and even, got {size}")
        self.owner = owner
        self.half = size // 2
        self._cw: list[int] = []  # sorted by clockwise distance from owner
        self._ccw: list[int] = []  # sorted by counter-clockwise distance
        #: Bumped on every actual mutation; next-hop caches key on it.
        self.version = 0

    def add(self, node_id: int) -> bool:
        """Consider ``node_id`` for membership.  Returns True if it was added."""
        if node_id == self.owner:
            return False
        added = False
        if self._insert(self._cw, cw_distance(self.owner, node_id), node_id):
            added = True
        if self._insert(self._ccw, cw_distance(node_id, self.owner), node_id):
            added = True
        if added:
            self.version += 1
        return added

    def _insert(self, side: list[int], distance: int, node_id: int) -> bool:
        if node_id in side:
            return False
        key = distance

        def side_key(member: int) -> int:
            if side is self._cw:
                return cw_distance(self.owner, member)
            return cw_distance(member, self.owner)

        position = 0
        while position < len(side) and side_key(side[position]) < key:
            position += 1
        if position >= self.half:
            return False
        side.insert(position, node_id)
        if len(side) > self.half:
            side.pop()
        return True

    def remove(self, node_id: int) -> bool:
        """Remove a failed member.  Returns True if it was present."""
        removed = False
        if node_id in self._cw:
            self._cw.remove(node_id)
            removed = True
        if node_id in self._ccw:
            self._ccw.remove(node_id)
            removed = True
        if removed:
            self.version += 1
        return removed

    @property
    def members(self) -> list[int]:
        """All distinct members (a node may appear on both sides in tiny rings)."""
        seen = dict.fromkeys(self._cw)
        seen.update(dict.fromkeys(self._ccw))
        return list(seen)

    @property
    def cw_members(self) -> list[int]:
        """Clockwise members ordered by increasing distance."""
        return list(self._cw)

    @property
    def ccw_members(self) -> list[int]:
        """Counter-clockwise members ordered by increasing distance."""
        return list(self._ccw)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._cw or node_id in self._ccw

    def __len__(self) -> int:
        return len(self.members)

    def is_full(self) -> bool:
        """Whether both sides hold ``l/2`` members."""
        return len(self._cw) >= self.half and len(self._ccw) >= self.half

    def extremes(self) -> list[int]:
        """The outermost member on each side — repair queries go to these."""
        result = []
        if self._cw:
            result.append(self._cw[-1])
        if self._ccw:
            result.append(self._ccw[-1])
        return result

    def covers(self, key: int) -> bool:
        """Whether ``key`` falls inside the leafset span.

        Pastry's routing rule: if the key is within the span from the
        farthest counter-clockwise to the farthest clockwise member, the
        message is forwarded directly to the numerically closest member.
        The span test is only meaningful when both sides are full; a
        half-empty side means either the ring is tiny (we know everyone,
        so the span effectively covers the namespace) or we are still
        converging — both are treated as covering, and the closest-member
        delivery plus stabilization then converge to the true root.

        When the farthest member on both sides is the *same* node, the
        population is no larger than the leafset: the set wraps the whole
        ring and covers every key.  The span arithmetic degenerates there
        (``lo == hi`` collapses the span to zero), which used to make the
        true root of a key refuse local delivery and forward it by
        routing-table prefix instead — two nodes could each pick the other
        as next hop and ping-pong the message to the hop limit forever.
        """
        if len(self._cw) < self.half or len(self._ccw) < self.half:
            return True
        lo = self._ccw[-1]
        hi = self._cw[-1]
        if lo == hi:
            return True
        # The same degeneracy one population size earlier: when a member
        # appears on *both* sides, walking ``half`` steps each way meets,
        # so the ring is no larger than the leafset and every key is
        # covered.  The span [lo, hi] would then measure the far arc —
        # excluding the owner's own neighbourhood, making the true root
        # of a nearby key refuse local delivery and prefix-route it into
        # a ping-pong (the live-mode 6-node cluster hit this).
        if not set(self._cw).isdisjoint(self._ccw):
            return True
        span = cw_distance(lo, hi)
        return cw_distance(lo, key) <= span

    def closest(self, key: int, include_owner: bool = True) -> int:
        """The member (optionally including the owner) numerically closest to ``key``."""
        candidates = self.members
        if include_owner:
            candidates = candidates + [self.owner]
        if not candidates:
            raise ValueError("empty leafset and owner excluded")
        return min(
            candidates,
            key=lambda member: (ring_distance(member, key), member),
        )

    def merge(self, other_members: Iterable[int]) -> bool:
        """Add every id in ``other_members``; returns True if anything changed."""
        changed = False
        for member in other_members:
            if self.add(member):
                changed = True
        return changed

    def neighbour_cw(self) -> Optional[int]:
        """Immediate clockwise neighbour, if known."""
        return self._cw[0] if self._cw else None

    def neighbour_ccw(self) -> Optional[int]:
        """Immediate counter-clockwise neighbour, if known."""
        return self._ccw[0] if self._ccw else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Leafset(owner={self.owner & ID_MASK:032x}, "
            f"ccw={len(self._ccw)}, cw={len(self._cw)})"
        )
