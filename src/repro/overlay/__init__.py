"""Pastry-style structured overlay (MSPastry semantics).

Provides 128-bit circular identifier arithmetic, leafsets, prefix routing
tables, the :class:`PastryNode` protocol machine (routing, join, repair),
and the :class:`OverlayNetwork` coordinator with its failure detector and
heartbeat accounting.
"""

from repro.overlay.ids import (
    ID_BITS,
    ID_MASK,
    ID_SPACE,
    closer_id,
    common_prefix_len,
    common_suffix_len,
    cw_distance,
    digit,
    digits_per_id,
    hex_to_id,
    id_to_hex,
    in_wrapped_range,
    key_from_bytes,
    key_from_text,
    random_id,
    replace_suffix,
    ring_distance,
    wrapped_midpoint,
    wrapped_range_size,
)
from repro.overlay.leafset import Leafset
from repro.overlay.network import OverlayConfig, OverlayNetwork
from repro.overlay.node import PastryNode
from repro.overlay.routing_table import RoutingTable

__all__ = [
    "ID_BITS",
    "ID_MASK",
    "ID_SPACE",
    "Leafset",
    "OverlayConfig",
    "OverlayNetwork",
    "PastryNode",
    "RoutingTable",
    "closer_id",
    "common_prefix_len",
    "common_suffix_len",
    "cw_distance",
    "digit",
    "digits_per_id",
    "hex_to_id",
    "id_to_hex",
    "in_wrapped_range",
    "key_from_bytes",
    "key_from_text",
    "random_id",
    "replace_suffix",
    "ring_distance",
    "wrapped_midpoint",
    "wrapped_range_size",
]
