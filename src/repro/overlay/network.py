"""Overlay coordinator: membership, failure detection, heartbeat accounting.

Holds the registry of all :class:`PastryNode` instances, runs the leafset
failure detector, and accounts heartbeat bandwidth.

Two engineering deviations from a per-message implementation, both
documented in DESIGN.md, keep the Python event count tractable at the
scales we simulate:

* **Batched heartbeat accounting.**  MSPastry sends leafset heartbeats
  every 30 s.  Simulating each as a message event would dominate the event
  budget, so a single periodic sweep accounts the identical number of
  bytes per node (one heartbeat to each leafset member per period, both
  directions) without creating per-message events.
* **Detector-driven failure notification.**  When a node fails, every node
  whose leafset contains it would notice a missed heartbeat within one
  period.  We model exactly that: a reverse index records who lists whom;
  on failure, the affected nodes receive ``on_neighbour_failed`` after the
  heartbeat period (plus jitter), and then run the real message-based
  leafset repair protocol.

Routing, join, repair and all application traffic remain real messages
through the simulated network.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.net.stats import CATEGORY_OVERLAY, BandwidthAccounting
from repro.net.transport import Transport
from repro.overlay.ids import ring_distance
from repro.overlay.node import ID_BYTES, PastryNode
from repro.sim.simulator import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.observer import Observer


@dataclass
class OverlayConfig:
    """Overlay parameters (paper defaults: b=4, l=8, 30 s heartbeats)."""

    b: int = 4
    leafset_size: int = 8
    heartbeat_period: float = 30.0
    #: Wire size of one heartbeat message (header-dominated).
    heartbeat_bytes: int = 2 * ID_BYTES
    #: Extra delay after a missed heartbeat before a neighbour is declared dead.
    detection_grace: float = 5.0
    #: Period of the leafset stabilization exchange (state piggybacked on
    #: heartbeats in MSPastry; an explicit message exchange here, at twice
    #: the heartbeat period).
    stabilize_period: float = 60.0
    #: How long a node remembers that a peer was observed dead.  Gossip
    #: cannot resurrect a dead entry within this window; any message
    #: received *from* the peer clears the record immediately.
    death_record_ttl: float = 90.0
    #: Cache next-hop decisions per destination key, invalidated by the
    #: routing-table/leafset version counters.  Decisions are identical
    #: with the cache off; the toggle exists for the determinism tests.
    route_cache: bool = True


class OverlayNetwork:
    """Registry and services shared by all Pastry nodes in one simulation."""

    def __init__(
        self,
        sim: Simulator,
        transport: Transport,
        config: Optional[OverlayConfig] = None,
        rng: Optional[np.random.Generator] = None,
        observer: Optional["Observer"] = None,
    ) -> None:
        self.sim = sim
        self.transport = transport
        self.config = config if config is not None else OverlayConfig()
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.nodes: dict[int, PastryNode] = {}
        self._online_ids: list[int] = []  # sorted, for bootstrap + ground truth
        # Reverse leafset index: {node_id: set of nodes listing it}.
        self._listed_by: dict[int, set[int]] = {}
        self.routing_drops = 0
        self.reroutes = 0
        self._heartbeat_timer = None
        # Observer plumbing shared by all PastryNodes.  Counters are
        # pre-bound here; nodes guard on ``observer is not None``.
        self.observer = observer if (observer is not None and observer.enabled) else None
        if self.observer is not None:
            metrics = self.observer.metrics
            self.c_reroutes = metrics.counter("overlay.reroutes_total")
            self.c_routing_drops = metrics.counter("overlay.routing_drops_total")
            self.c_joins = metrics.counter("overlay.joins_total")
        else:
            self.c_reroutes = None
            self.c_routing_drops = None
            self.c_joins = None

    # ------------------------------------------------------------------
    # Node management
    # ------------------------------------------------------------------

    def create_node(self, node_id: int) -> PastryNode:
        """Instantiate a node (offline until :meth:`PastryNode.go_online`)."""
        if node_id in self.nodes:
            raise ValueError(f"duplicate node id {node_id:032x}")
        node = PastryNode(node_id, self)
        self.nodes[node_id] = node
        return node

    def pick_bootstrap(self, exclude: int) -> Optional[PastryNode]:
        """A random online node to bootstrap a join (well-known-host model)."""
        if not self._online_ids:
            return None
        candidates = self._online_ids
        for _ in range(8):
            choice = candidates[int(self._rng.integers(0, len(candidates)))]
            if choice != exclude:
                return self.nodes[choice]
        others = [node_id for node_id in candidates if node_id != exclude]
        return self.nodes[others[0]] if others else None

    def on_node_online(self, node: PastryNode) -> None:
        """Bookkeeping when a node comes up (called by the node itself)."""
        position = bisect.bisect_left(self._online_ids, node.node_id)
        if position >= len(self._online_ids) or self._online_ids[position] != node.node_id:
            self._online_ids.insert(position, node.node_id)

    def on_node_offline(self, node: PastryNode) -> None:
        """Bookkeeping + failure detection when a node goes down."""
        position = bisect.bisect_left(self._online_ids, node.node_id)
        if position < len(self._online_ids) and self._online_ids[position] == node.node_id:
            self._online_ids.pop(position)
        watchers = self._listed_by.pop(node.node_id, set())
        delay = self.config.heartbeat_period + self.config.detection_grace
        for watcher_id in watchers:
            self.sim.schedule(
                delay + float(self._rng.uniform(0.0, 1.0)),
                self._notify_failure,
                watcher_id,
                node.node_id,
            )

    def _notify_failure(self, watcher_id: int, dead_id: int) -> None:
        if dead_id in self._online_ids_set():
            return  # came back before detection; heartbeats resumed
        watcher = self.nodes.get(watcher_id)
        if watcher is not None and watcher.online:
            watcher.on_neighbour_failed(dead_id)

    def _online_ids_set(self) -> "_SortedView":
        # Membership checks are rare (only on failure notification), so a
        # bisect-backed view avoids maintaining a shadow set.
        return _SortedView(self._online_ids)

    def on_leafset_change(self, node: PastryNode) -> None:
        """Maintain the reverse leafset index (the failure detector's view)."""
        for member in node.leafset.members:
            self._listed_by.setdefault(member, set()).add(node.node_id)

    # ------------------------------------------------------------------
    # Heartbeat service
    # ------------------------------------------------------------------

    def start_heartbeats(self, accounting: Optional[BandwidthAccounting]) -> None:
        """Begin the periodic heartbeat bandwidth sweep."""
        if self._heartbeat_timer is not None:
            return

        def sweep() -> None:
            if accounting is None:
                return
            now = self.sim.now
            for node_id in self._online_ids:
                node = self.nodes[node_id]
                neighbours = len(node.leafset)
                size = neighbours * (self.config.heartbeat_bytes + 48)
                accounting.record_local(now, node.name, size, size, CATEGORY_OVERLAY)

        self._heartbeat_timer = self.sim.schedule_periodic(
            self.config.heartbeat_period, sweep
        )

    def stop_heartbeats(self) -> None:
        """Stop the heartbeat sweep (end of simulation)."""
        if self._heartbeat_timer is not None:
            self._heartbeat_timer.cancel()
            self._heartbeat_timer = None

    # ------------------------------------------------------------------
    # Ground truth (tests and oracle checks only — not used by protocols)
    # ------------------------------------------------------------------

    @property
    def online_count(self) -> int:
        """Number of currently online nodes."""
        return len(self._online_ids)

    @property
    def online_ids(self) -> list[int]:
        """Sorted ids of online nodes (copy)."""
        return list(self._online_ids)

    def true_closest_online(self, key: int) -> Optional[int]:
        """The actually-closest online node to ``key`` (oracle, for tests)."""
        if not self._online_ids:
            return None
        position = bisect.bisect_left(self._online_ids, key)
        candidates = []
        for offset in (position - 1, position, position + 1):
            candidates.append(self._online_ids[offset % len(self._online_ids)])
        return min(candidates, key=lambda c: (ring_distance(c, key), c))


class _SortedView:
    """Set-like membership view over a sorted list (no copying)."""

    def __init__(self, sorted_ids: list[int]) -> None:
        self._ids = sorted_ids

    def __contains__(self, value: int) -> bool:
        position = bisect.bisect_left(self._ids, value)
        return position < len(self._ids) and self._ids[position] == value
