"""A Pastry node: prefix routing, leafset maintenance, join protocol.

Implements the MSPastry behaviours Seaweed relies on:

* key-based routing (``route``) with the standard rule — deliver via the
  leafset when the key is in the leafset span, otherwise forward to the
  routing-table entry with a longer prefix, otherwise to any known node
  numerically closer to the key;
* per-hop acknowledgements with timeout-driven eviction of dead routing
  entries and re-forwarding (MSPastry's lazy repair);
* the join protocol: route a join request to the joiner's own id, seed the
  joiner with routing state from the path and the leafset of the closest
  node, then announce to the new leafset members;
* leafset repair when the failure detector reports a dead neighbour.

The application above (Seaweed) registers a deliver upcall and may also
send single-hop messages directly to known nodes (e.g. replica-set
members), exactly as the paper's metadata push does.

All overlay wire traffic is typed (:mod:`repro.proto.messages`) and
dispatched through a registry-driven :class:`repro.proto.registry.
Dispatcher`; unknown kinds are counted by the transport instead of being
silently ignored.
"""

from __future__ import annotations

import dataclasses
import os
import sys
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.net.transport import Message
from repro.overlay.ids import hex_to_id, id_to_hex, ring_distance
from repro.overlay.leafset import Leafset
from repro.overlay.routing_table import RoutingTable
from repro.proto import codec
from repro.proto.messages import (
    JoinReply,
    JoinRequest,
    LeafsetAnnounce,
    LeafsetProbe,
    LeafsetState,
    ProtoMessage,
    RouteAck,
    RouteEnvelope,
)
from repro.proto.registry import Dispatcher

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.overlay.network import OverlayNetwork

#: Approximate serialized size of one node id on the wire.
ID_BYTES = codec.ID
#: Timeout before a forwarded hop is declared dead and rerouted.
HOP_ACK_TIMEOUT = 0.5
#: Maximum hop count before a routed message is dropped (loop guard).
MAX_HOPS = 64

#: When set, hop-cap routing drops print a one-line diagnosis to stderr
#: (picked up by the live-mode host logs).
_ROUTE_DEBUG = bool(os.environ.get("REPRO_ROUTE_DEBUG"))
#: Join retry: resend the join if no reply arrived within this window.
JOIN_RETRY_TIMEOUT = 4.0
MAX_JOIN_RETRIES = 5

# Wire tags, re-exported for compatibility; the message classes own them.
KIND_ROUTE = RouteEnvelope.KIND
KIND_ROUTE_ACK = RouteAck.KIND
KIND_JOIN_REQ = JoinRequest.KIND
KIND_JOIN_REPLY = JoinReply.KIND
KIND_LEAFSET_ANNOUNCE = LeafsetAnnounce.KIND
KIND_LEAFSET_STATE = LeafsetState.KIND
KIND_LEAFSET_PROBE = LeafsetProbe.KIND

DeliverUpcall = Callable[[int, str, Any, int], None]

#: Route-cache miss sentinel (``None`` means "deliver locally").
_MISS: object = object()


class PastryNode:
    """One overlay node; lives on a single endsystem."""

    def __init__(self, node_id: int, network: "OverlayNetwork") -> None:
        self.node_id = node_id
        self.name = id_to_hex(node_id)
        self.network = network
        self.leafset = Leafset(node_id, size=network.config.leafset_size)
        self.routing_table = RoutingTable(node_id, b=network.config.b)
        self.online = False
        self._deliver_upcall: Optional[DeliverUpcall] = None
        self._neighbour_change_upcall: Optional[Callable[[], None]] = None
        self._neighbour_failed_upcall: Optional[Callable[[int], None]] = None
        self._next_msg_id = 0
        self._pending_acks: set[int] = set()
        self._stabilize_timer = None
        self._joined = False
        # Next-hop memo: {destination key: decision}.  Valid only while
        # the (routing_table, leafset) version pair is unchanged — every
        # input of _compute_next_hop is covered by those two counters.
        self._route_cache: dict[int, Optional[int]] = {}
        self._route_cache_versions: Optional[tuple[int, int]] = None
        self._route_cache_enabled = network.config.route_cache
        # Death records: {node_id: observation time}.  Entries suppress
        # gossip-driven resurrection of dead peers for a TTL.
        self._death_records: dict[int, float] = {}
        self._dispatch = Dispatcher(on_unknown=self._on_unknown_kind)
        self._dispatch.on(RouteEnvelope, self._handle_route)
        self._dispatch.on(RouteAck, self._handle_route_ack)
        self._dispatch.on(JoinRequest, self._handle_join_req)
        self._dispatch.on(JoinReply, self._handle_join_reply)
        self._dispatch.on(LeafsetAnnounce, self._handle_leafset_announce)
        self._dispatch.on(LeafsetState, self._handle_leafset_state)
        self._dispatch.on(LeafsetProbe, self._handle_leafset_probe)
        network.transport.register(self.name, self._on_message)

    # ------------------------------------------------------------------
    # Application interface (KBR API)
    # ------------------------------------------------------------------

    def set_deliver(self, upcall: DeliverUpcall) -> None:
        """Register the application deliver upcall: ``fn(key, kind, payload, hops)``."""
        self._deliver_upcall = upcall

    def set_neighbour_change(self, upcall: Callable[[], None]) -> None:
        """Register a callback fired whenever the leafset changes."""
        self._neighbour_change_upcall = upcall

    def set_neighbour_failed(self, upcall: Callable[[int], None]) -> None:
        """Register a callback fired when a neighbour is declared dead."""
        self._neighbour_failed_upcall = upcall

    def route(
        self,
        key: int,
        kind: str,
        payload: Any,
        size: int,
        category: str = "query",
    ) -> None:
        """Route an application message to the live node closest to ``key``."""
        envelope = RouteEnvelope(
            key=key,
            app_kind=kind,
            app_payload=payload,
            app_size=size,
            hops=0,
            origin=self.node_id,
        )
        # Defer even the first hop so that a route that terminates locally
        # never re-enters the caller synchronously.
        self.network.sim.schedule(0.0, self._route_envelope, envelope, category)

    def route_app(
        self, key: int, app: ProtoMessage, category: Optional[str] = None
    ) -> None:
        """Route a typed application message; its size comes from the codec.

        ``category`` defaults to the message class's accounting category.
        """
        if category is None:
            category = app.CATEGORY
        self.route(key, app.KIND, app, app.body_size(), category)

    def send_direct(
        self,
        dst_id: int,
        kind: str,
        payload: Any,
        size: int,
        category: str = "query",
    ) -> None:
        """Send an application message in a single hop to a known node.

        Used for replica-set pushes and tree-internal traffic where the
        destination id is already known; no ack, the application layer is
        responsible for retransmission.
        """
        if dst_id == self.node_id:
            if self._deliver_upcall is not None:
                # Deferred: synchronous self-delivery would re-enter the
                # calling protocol machine.
                self.network.sim.schedule(
                    0.0, self._deliver_upcall, dst_id, kind, payload, 0
                )
            return
        envelope = RouteEnvelope(
            key=dst_id,
            app_kind=kind,
            app_payload=payload,
            app_size=size,
            hops=0,
            origin=self.node_id,
            direct=True,
        )
        self.network.transport.send(
            self.name, id_to_hex(dst_id), Message.of(envelope, category)
        )

    def send_direct_app(
        self, dst_id: int, app: ProtoMessage, category: Optional[str] = None
    ) -> None:
        """Single-hop send of a typed application message.

        ``category`` defaults to the message class's accounting category.
        """
        if category is None:
            category = app.CATEGORY
        self.send_direct(dst_id, app.KIND, app, app.body_size(), category)

    def replica_set(self, k: int) -> list[int]:
        """The ``k`` leafset members numerically closest to this node's id.

        This is the paper's metadata replica set: "the k numerically
        closest endsystems to x".
        """
        members = sorted(
            self.leafset.members,
            key=lambda member: (ring_distance(member, self.node_id), member),
        )
        return members[:k]

    def is_closest_to(self, key: int) -> bool:
        """Whether this node believes it is the live node closest to ``key``.

        Judged against the local leafset — exact when the leafset is
        accurate, which the repair protocol maintains.
        """
        return self.leafset.closest(key) == self.node_id

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def go_online(self, bootstrap: Optional["PastryNode"]) -> None:
        """Bring the node up and (re)join the overlay via ``bootstrap``."""
        self.online = True
        self._death_records.clear()
        self.leafset = Leafset(self.node_id, size=self.network.config.leafset_size)
        self.routing_table = RoutingTable(self.node_id, b=self.network.config.b)
        # The fresh state objects restart their version counters, which
        # could collide with the memoized pair — drop the memo outright.
        self._route_cache.clear()
        self._route_cache_versions = None
        self.network.transport.set_online(self.name, True)
        self._joined = False
        if self.network.c_joins is not None:
            self.network.c_joins.inc()
        if bootstrap is not None and bootstrap.node_id != self.node_id:
            self._send_join(bootstrap)
            self.network.sim.schedule(JOIN_RETRY_TIMEOUT, self._check_join, 1)
        else:
            self._joined = True
        self.network.on_node_online(self)
        self._start_stabilizer()

    def _send_join(self, bootstrap: "PastryNode") -> None:
        self.routing_table.add(bootstrap.node_id)
        request = JoinRequest(joiner=self.node_id, path=[])
        self.network.transport.send(
            self.name, bootstrap.name, Message.of(request)
        )

    def _check_join(self, attempt: int) -> None:
        """Retry the join until a JOIN_REPLY populates the leafset.

        A lost join request or reply would otherwise leave the node with
        a near-empty leafset that only slow stabilization could heal.
        """
        if not self.online or self._joined:
            return
        if attempt > MAX_JOIN_RETRIES:
            return  # stabilization will have to finish the job
        bootstrap = self.network.pick_bootstrap(exclude=self.node_id)
        if bootstrap is not None:
            self._send_join(bootstrap)
        self.network.sim.schedule(JOIN_RETRY_TIMEOUT, self._check_join, attempt + 1)

    def go_offline(self) -> None:
        """Take the node down (fail-stop: no goodbye messages)."""
        self.online = False
        self.network.transport.set_online(self.name, False)
        if self._stabilize_timer is not None:
            self._stabilize_timer.cancel()
            self._stabilize_timer = None
        self.network.on_node_offline(self)

    def _start_stabilizer(self) -> None:
        """Periodic leafset exchange with the immediate ring neighbours.

        MSPastry piggybacks leafset state on heartbeats; we run the
        equivalent exchange on its own timer with a randomized phase.
        """
        period = self.network.config.stabilize_period
        first = period * (0.5 + 0.5 * ((self.node_id >> 32) % 1000) / 1000.0)
        self._stabilize_timer = self.network.sim.schedule_periodic(
            period, self._stabilize, first_delay=first
        )

    def _stabilize(self) -> None:
        if not self.online:
            return
        targets = {self.leafset.neighbour_cw(), self.leafset.neighbour_ccw()}
        targets.discard(None)
        for target in targets:
            self.network.transport.send(
                self.name, id_to_hex(target), Message.of(LeafsetProbe())
            )

    # ------------------------------------------------------------------
    # Death records
    # ------------------------------------------------------------------

    def note_dead(self, node_id: int) -> None:
        """Record direct evidence that ``node_id`` is down."""
        self._death_records[node_id] = self.network.sim.now

    def note_alive(self, node_id: int) -> None:
        """Clear any death record: we heard from the node directly."""
        self._death_records.pop(node_id, None)

    def is_recorded_dead(self, node_id: int) -> bool:
        """Whether a death record for ``node_id`` is still fresh."""
        observed = self._death_records.get(node_id)
        if observed is None:
            return False
        if self.network.sim.now - observed > self.network.config.death_record_ttl:
            del self._death_records[node_id]
            return False
        return True

    def _live_only(self, ids):
        """Filter out ids with fresh death records (gossip hygiene)."""
        return [node_id for node_id in ids if not self.is_recorded_dead(node_id)]

    # ------------------------------------------------------------------
    # Routing internals
    # ------------------------------------------------------------------

    def _route_envelope(self, envelope: RouteEnvelope, category: str) -> None:
        key = envelope.key
        hops = envelope.hops
        if hops >= MAX_HOPS:
            self.network.routing_drops += 1
            if self.network.c_routing_drops is not None:
                self.network.c_routing_drops.inc()
            if _ROUTE_DEBUG:  # pragma: no cover - diagnostic aid
                print(
                    f"ROUTE-DROP at={self.node_id:032x} key={key:032x} "
                    f"kind={envelope.app_kind} next={self._next_hop(key)} "
                    f"leafset={[format(m, '032x')[:6] for m in self.leafset.members]}",
                    file=sys.stderr, flush=True,
                )
            return
        next_hop = self._next_hop(key)
        if next_hop is None or next_hop == self.node_id:
            self._deliver(envelope)
            return
        if _ROUTE_DEBUG and hops > MAX_HOPS - 6:  # pragma: no cover
            print(
                f"ROUTE-HOP at={self.node_id:032x} key={key:032x} "
                f"hops={hops} next={next_hop:032x} "
                f"covers={self.leafset.covers(key)} "
                f"leafset={[format(m, '032x')[:6] for m in self.leafset.members]}",
                file=sys.stderr, flush=True,
            )
        envelope = dataclasses.replace(envelope, hops=hops + 1)
        message = Message.of(envelope, category)
        self._forward_with_ack(next_hop, message, envelope, category)

    #: Bound on the per-node next-hop memo (cleared wholesale when full).
    ROUTE_CACHE_MAX = 4096

    def _next_hop(self, key: int) -> Optional[int]:
        """Cached Pastry routing decision; None means deliver locally.

        Cached per exact destination key, not per digit prefix: a
        leafset-covered key resolves to the numerically closest member,
        which two keys sharing any digit prefix need not agree on, so
        prefix-level caching would corrupt near-ring routing.  The memo
        is dropped whenever either routing input mutates (version
        counters) — see DESIGN.md §6.10.
        """
        if not self._route_cache_enabled:
            return self._compute_next_hop(key)
        versions = (self.routing_table.version, self.leafset.version)
        cache = self._route_cache
        if versions != self._route_cache_versions:
            cache.clear()
            self._route_cache_versions = versions
        else:
            hit = cache.get(key, _MISS)
            if hit is not _MISS:
                return hit
        decision = self._compute_next_hop(key)
        if len(cache) >= self.ROUTE_CACHE_MAX:
            cache.clear()
        cache[key] = decision
        return decision

    def _compute_next_hop(self, key: int) -> Optional[int]:
        """Standard Pastry routing decision; None means deliver locally."""
        if key == self.node_id:
            return None
        if self.leafset.covers(key):
            closest = self.leafset.closest(key)
            return None if closest == self.node_id else closest
        entry = self.routing_table.lookup(key)
        if entry is not None:
            return entry
        # Rare case: no exact routing entry; pick any known node strictly
        # closer to the key than we are.
        own_distance = ring_distance(self.node_id, key)
        best: Optional[int] = None
        best_distance = own_distance
        for candidate in list(self.routing_table.closer_candidates(key)) + list(
            self.leafset.members
        ):
            candidate_distance = ring_distance(candidate, key)
            if candidate_distance < best_distance:
                best = candidate
                best_distance = candidate_distance
        return best

    def _forward_with_ack(
        self,
        next_hop: int,
        message: Message,
        envelope: RouteEnvelope,
        category: str,
    ) -> None:
        msg_id = self._next_msg_id
        self._next_msg_id += 1
        message.meta["msg_id"] = msg_id
        message.meta["needs_ack"] = True
        self.network.transport.send(self.name, id_to_hex(next_hop), message)
        self.network.sim.schedule(
            HOP_ACK_TIMEOUT, self._on_ack_timeout, next_hop, msg_id, envelope, category
        )
        self._pending_acks.add(msg_id)

    def _on_ack_timeout(
        self, next_hop: int, msg_id: int, envelope: RouteEnvelope, category: str
    ) -> None:
        if msg_id not in self._pending_acks:
            return  # acked in time
        self._pending_acks.discard(msg_id)
        if not self.online:
            return
        # The hop is dead: evict it everywhere and re-route.
        self.note_dead(next_hop)
        self.routing_table.remove(next_hop)
        if self.leafset.remove(next_hop):
            self._repair_leafset()
        self.network.reroutes += 1
        if self.network.c_reroutes is not None:
            self.network.c_reroutes.inc()
        envelope = dataclasses.replace(envelope, hops=max(0, envelope.hops - 1))
        self._route_envelope(envelope, category)

    def _deliver(self, envelope: RouteEnvelope) -> None:
        self.routing_table.add(envelope.origin)
        if self._deliver_upcall is None:
            return
        self._deliver_upcall(
            envelope.key,
            envelope.app_kind,
            envelope.app_payload,
            envelope.hops,
        )

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------

    def _on_message(self, _dst: str, message: Message) -> None:
        if not self.online:
            return
        if message.src:
            self.note_alive(hex_to_id(message.src))
        self._dispatch.dispatch(message.kind, message)

    def _on_unknown_kind(self, kind: str, _message: Message) -> None:
        self.network.transport.count_unknown_kind(self.name, kind)

    def _handle_route(self, message: Message) -> None:
        envelope: RouteEnvelope = message.payload
        if message.meta.get("needs_ack"):
            ack = Message.of(RouteAck(msg_id=message.meta["msg_id"]), message.category)
            self.network.transport.send(self.name, message.src, ack)
        self.routing_table.add(envelope.origin)
        if envelope.direct:
            self._deliver(envelope)
        else:
            self._route_envelope(envelope, message.category)

    def _handle_route_ack(self, message: Message) -> None:
        self._pending_acks.discard(message.payload.msg_id)

    def _handle_join_req(self, message: Message) -> None:
        request: JoinRequest = message.payload
        joiner = request.joiner
        # Route *before* learning the joiner, and never forward the join
        # request to the joiner itself — we must find the node that is
        # closest among the existing members.
        next_hop = self._next_hop(joiner)
        self.routing_table.add(joiner)
        if next_hop is None or next_hop in (self.node_id, joiner):
            # We are the closest live node: reply with our full state.
            reply = JoinReply(
                leafset=self.leafset.members + [self.node_id],
                routing=self.routing_table.entries(),
                path=request.path,
            )
            self.network.transport.send(
                self.name, id_to_hex(joiner), Message.of(reply)
            )
            return
        forwarded = JoinRequest(joiner=joiner, path=request.path + [self.node_id])
        self.network.transport.send(
            self.name, id_to_hex(next_hop), Message.of(forwarded)
        )

    def _handle_join_reply(self, message: Message) -> None:
        self._joined = True
        state: JoinReply = message.payload
        for node_id in self._live_only(state.path):
            self.routing_table.add(node_id)
        for node_id in self._live_only(state.routing):
            self.routing_table.add(node_id)
        live_members = self._live_only(state.leafset)
        changed = self.leafset.merge(live_members)
        for node_id in live_members:
            self.routing_table.add(node_id)
        # Announce ourselves to our leafset so they add us symmetrically.
        for member in self.leafset.members:
            self.network.transport.send(
                self.name,
                id_to_hex(member),
                Message.of(LeafsetAnnounce(joiner=self.node_id)),
            )
        if changed:
            self._notify_neighbour_change()

    def _handle_leafset_announce(self, message: Message) -> None:
        joiner = message.payload.joiner
        self.routing_table.add(joiner)
        changed = self.leafset.add(joiner)
        # Reply with our leafset so the joiner can refine its own.
        reply = LeafsetState(members=self.leafset.members + [self.node_id])
        self.network.transport.send(self.name, message.src, Message.of(reply))
        if changed:
            self._notify_neighbour_change()

    def _handle_leafset_state(self, message: Message) -> None:
        state: LeafsetState = message.payload
        members = self._live_only(m for m in state.members if m != self.node_id)
        changed = self.leafset.merge(members)
        for member in members:
            self.routing_table.add(member)
        if changed:
            self._notify_neighbour_change()

    def _handle_leafset_probe(self, message: Message) -> None:
        prober = hex_to_id(message.src)
        if self.leafset.add(prober):
            self._notify_neighbour_change()
        self.routing_table.add(prober)
        reply = LeafsetState(members=self.leafset.members + [self.node_id])
        self.network.transport.send(self.name, message.src, Message.of(reply))

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------

    def on_neighbour_failed(self, dead_id: int) -> None:
        """Failure-detector notification that ``dead_id`` stopped heartbeating."""
        if not self.online:
            return
        self.note_dead(dead_id)
        self.routing_table.remove(dead_id)
        removed = self.leafset.remove(dead_id)
        if self._neighbour_failed_upcall is not None:
            self._neighbour_failed_upcall(dead_id)
        if removed:
            observer = self.network.observer
            if observer is not None:
                observer.leafset_repair(self.network.sim.now, self.node_id, dead_id)
            self._repair_leafset()
            self._notify_neighbour_change()

    def _repair_leafset(self) -> None:
        """Ask the surviving leafset extremes for their members."""
        for extreme in self.leafset.extremes():
            self.network.transport.send(
                self.name, id_to_hex(extreme), Message.of(LeafsetProbe())
            )

    def _notify_neighbour_change(self) -> None:
        self.network.on_leafset_change(self)
        if self._neighbour_change_upcall is not None:
            self._neighbour_change_upcall()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "online" if self.online else "offline"
        return f"PastryNode({self.name[:8]}…, {state})"
