"""128-bit circular identifier arithmetic for the Pastry overlay.

Identifiers (endsystemIds, object keys, vertexIds) are 128-bit integers
interpreted as sequences of digits in base ``2^b`` (b is typically 4, so a
key is 32 hex digits).  This module provides:

* digit extraction and common prefix/suffix lengths;
* ring distances and numerically-closest comparisons on the circular
  namespace;
* wrapped range membership and midpoints (used by the dissemination
  protocol's divide-and-conquer);
* deterministic key derivation via SHA-1 (queryIds, as in the paper).

All functions are pure and operate on plain ``int`` values, which keeps
hot paths (routing, range subdivision) allocation-free.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache

import numpy as np

ID_BITS = 128
ID_SPACE = 1 << ID_BITS
ID_MASK = ID_SPACE - 1


@lru_cache(maxsize=None)
def digits_per_id(b: int) -> int:
    """Number of base-``2^b`` digits in an identifier."""
    if b <= 0 or ID_BITS % b != 0:
        raise ValueError(f"b must divide {ID_BITS}, got {b}")
    return ID_BITS // b


def digit(identifier: int, index: int, b: int) -> int:
    """The ``index``-th digit of ``identifier`` (0 = most significant)."""
    num_digits = digits_per_id(b)
    if not 0 <= index < num_digits:
        raise ValueError(f"digit index {index} out of range for b={b}")
    shift = (num_digits - 1 - index) * b
    return (identifier >> shift) & ((1 << b) - 1)


def common_prefix_len(a: int, c: int, b: int) -> int:
    """Length of the common most-significant-digit prefix of ``a`` and ``c``."""
    if a == c:
        return digits_per_id(b)
    xor = (a ^ c) & ID_MASK
    leading_zero_bits = ID_BITS - xor.bit_length()
    return leading_zero_bits // b


def common_suffix_len(a: int, c: int, b: int) -> int:
    """Length of the common least-significant-digit suffix of ``a`` and ``c``."""
    if a == c:
        return digits_per_id(b)
    xor = (a ^ c) & ID_MASK
    trailing_zero_bits = (xor & -xor).bit_length() - 1
    return trailing_zero_bits // b


def cw_distance(src: int, dst: int) -> int:
    """Clockwise (increasing-id) distance from ``src`` to ``dst``."""
    return (dst - src) & ID_MASK


def ring_distance(a: int, c: int) -> int:
    """Minimal distance between ``a`` and ``c`` on the circular namespace."""
    forward = (c - a) & ID_MASK
    return min(forward, ID_SPACE - forward)


def closer_id(candidate_a: int, candidate_b: int, target: int) -> int:
    """The candidate numerically closer to ``target`` (ties break on lower id).

    "Numerically closest" in Pastry is ring distance on the circular
    namespace; a deterministic tie-break keeps root election unambiguous.
    """
    dist_a = ring_distance(candidate_a, target)
    dist_b = ring_distance(candidate_b, target)
    if dist_a < dist_b:
        return candidate_a
    if dist_b < dist_a:
        return candidate_b
    return min(candidate_a, candidate_b)


def in_wrapped_range(identifier: int, lo: int, hi: int) -> bool:
    """Whether ``identifier`` lies in the wrapped half-open range ``[lo, hi)``.

    ``lo == hi`` denotes the full namespace.
    """
    if lo == hi:
        return True
    if lo < hi:
        return lo <= identifier < hi
    return identifier >= lo or identifier < hi


def wrapped_range_size(lo: int, hi: int) -> int:
    """Number of identifiers in the wrapped range ``[lo, hi)`` (full if lo==hi)."""
    if lo == hi:
        return ID_SPACE
    return (hi - lo) & ID_MASK


def wrapped_midpoint(lo: int, hi: int) -> int:
    """Midpoint of the wrapped range ``[lo, hi)``.

    Subdividing at the midpoint yields the two equal subranges used by the
    dissemination protocol's divide-and-conquer broadcast.
    """
    return (lo + wrapped_range_size(lo, hi) // 2) & ID_MASK


def key_from_bytes(data: bytes) -> int:
    """SHA-1 based key derivation (queryId = SHA-1 of the query text)."""
    digest = hashlib.sha1(data).digest()
    # SHA-1 yields 160 bits; keep the most significant 128.
    return int.from_bytes(digest[:16], "big")


def key_from_text(text: str) -> int:
    """Convenience wrapper: key for a unicode string (e.g. SQL text)."""
    return key_from_bytes(text.encode("utf-8"))


def random_id(rng: np.random.Generator) -> int:
    """A uniformly random 128-bit identifier."""
    high = int(rng.integers(0, 1 << 64, dtype=np.uint64))
    low = int(rng.integers(0, 1 << 64, dtype=np.uint64))
    return (high << 64) | low


# The hex <-> int conversions run on every transport send/receive, and
# the universe of values is population-bounded (endsystem ids, plus a
# handful of query and vertex keys), so memoization turns the per-message
# formatting into a dict hit.
@lru_cache(maxsize=1 << 16)
def id_to_hex(identifier: int) -> str:
    """Canonical 32-hex-digit rendering of an identifier."""
    return f"{identifier & ID_MASK:032x}"


@lru_cache(maxsize=1 << 16)
def hex_to_id(text: str) -> int:
    """Parse an identifier from its hex rendering."""
    value = int(text, 16)
    if not 0 <= value < ID_SPACE:
        raise ValueError(f"identifier out of range: {text}")
    return value


def replace_suffix(identifier: int, source: int, num_digits: int, b: int) -> int:
    """Replace the last ``num_digits`` digits of ``identifier`` with ``source``'s.

    This is the paper's ``PREFIX(vertexId, 128/b-(len+1)) + SUFFIX(queryId,
    len+1)`` concatenation: the vertex keeps its own most-significant digits
    and adopts the query key's least-significant ones.
    """
    total = digits_per_id(b)
    if not 0 <= num_digits <= total:
        raise ValueError(f"num_digits {num_digits} out of range for b={b}")
    if num_digits == total:
        return source & ID_MASK
    mask = (1 << (num_digits * b)) - 1
    return (identifier & ~mask) | (source & mask)
