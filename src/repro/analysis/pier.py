"""PIER availability decay (paper Table 2).

PIER avoids churn-driven re-replication by periodically re-inserting
data, but pays in availability: tuples inserted by a source are lost for
querying when the responsible root changes, until the source's next
refresh.  For churn rate ``c``, the expected fraction of a source's
tuples still available ``t`` seconds after its last refresh decays as
``e^(-c t)``.
"""

from __future__ import annotations

import math

from repro.analysis.parameters import GNUTELLA_CHURN, TABLE1

#: The refresh ages reported in Table 2 (5 min, 1 hour, 12 hours).
TABLE2_AGES = (300.0, 3600.0, 12 * 3600.0)


def pier_availability(churn_rate: float, age: float) -> float:
    """Expected fraction of tuples available ``age`` seconds after refresh."""
    if age < 0:
        raise ValueError("age must be non-negative")
    return math.exp(-churn_rate * age)


def table2(
    farsite_churn: float = TABLE1.churn_rate,
    gnutella_churn: float = GNUTELLA_CHURN,
    ages: tuple[float, ...] = TABLE2_AGES,
) -> dict[str, list[float]]:
    """Regenerate Table 2: availability per environment per refresh age."""
    return {
        "Farsite": [pier_availability(farsite_churn, age) for age in ages],
        "Gnutella": [pier_availability(gnutella_churn, age) for age in ages],
    }


#: The values printed in the paper's Table 2, for comparison in tests
#: and in EXPERIMENTS.md: {environment: (5 min, 1 hour, 12 hours)}.
PAPER_TABLE2 = {
    "Farsite": (0.998, 0.980, 0.789),
    "Gnutella": (0.973, 0.716, 0.018),
}
