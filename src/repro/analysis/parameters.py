"""Model parameters (paper Table 1).

The analytic comparison of §4.2 is driven by parameters measured from
real systems: network size from the Microsoft corporate network,
availability from the Farsite study, data rates and sizes from Anemone,
and Seaweed/PIER protocol constants.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ModelParameters:
    """The paper's Table 1, as a value object.

    Attributes mirror the table's variables; units are bytes and seconds.
    """

    #: N — number of endsystems (Microsoft CorpNet).
    num_endsystems: float = 300_000.0
    #: f_on — fraction of available endsystems (Farsite).
    fraction_online: float = 0.81
    #: c — churn rate per endsystem per second (Farsite).
    churn_rate: float = 6.9e-6
    #: u — data update rate per endsystem, bytes/s (Anemone).
    update_rate: float = 970.0
    #: d — database size per endsystem, bytes (Anemone; 2.6 GB).
    database_size: float = 2.6e9
    #: k — number of metadata/data replicas stored (Farsite-informed).
    replicas: float = 4.0
    #: h — size of the data summary, bytes (Seaweed/Anemone; 5 histograms).
    summary_size: float = 6_473.0
    #: a — size of the availability model, bytes (Seaweed).
    availability_model_size: float = 48.0
    #: p — summary push rate per second.  Table 1 *states* 0.033/s (a
    #: 30 s period), but that value contradicts the paper's own Figure 3
    #: (at u = 970 B/s Seaweed plots ~10x below centralized, impossible
    #: with k*p*h = 863 B/s per endsystem) and its simulation setup
    #: (§4.3: pushes every 17.5 min).  We default to the simulation's
    #: effective rate, which reproduces the figures' shapes.
    push_rate: float = 1.0 / (17.5 * 60.0)
    #: r — PIER data refresh rate per second (5 min period by default).
    pier_refresh_rate: float = 1.0 / 300.0

    def with_overrides(self, **overrides: float) -> "ModelParameters":
        """A copy with some parameters replaced (for sweeps)."""
        return replace(self, **overrides)


#: The default Table 1 parameter set.
TABLE1 = ModelParameters()

#: PIER's less aggressive configuration: 1 hour refresh period.
PIER_HOURLY_REFRESH = 1.0 / 3600.0

#: Fig. 4's "small database, low update rate" variant.
SMALL_DB = TABLE1.with_overrides(database_size=100e6, update_rate=10.0)

#: Gnutella churn rate (Table 2, from the Saroiu et al. traces).
GNUTELLA_CHURN = 9.46e-5


def table1_rows() -> list[tuple[str, str, str, str]]:
    """The rows of Table 1 as (variable, description, value, source)."""
    return [
        ("N", "Number of endsystems", "300,000", "Microsoft CorpNet"),
        ("f_on", "Fraction of available endsystems", "0.81", "Farsite"),
        ("c", "Churn rate", "6.9e-06 /s", "Farsite"),
        ("u", "Data update rate per endsystem", "970 bytes/s", "Anemone"),
        ("d", "Database size per endsystem", "2.6 GB", "Anemone"),
        ("k", "Number of replicas stored", "4", "Farsite"),
        ("h", "Size of data summary", "6,473 bytes", "Seaweed/Anemone"),
        ("a", "Size of availability model", "48 bytes", "Seaweed"),
        ("p", "Summary push rate", "0.033 /s", "Seaweed (30 s period)"),
        (
            "r",
            "PIER data refresh rate",
            "0.0033 /s or 0.00028 /s",
            "PIER (5 mins or 1 hr period)",
        ),
    ]
