"""Analytic scalability models (paper §4.2: Table 1, Eqs. 1-4, Table 2)."""

from repro.analysis.indexes import (
    IndexParameters,
    breakeven_query_rate,
    broadcast_query_cost,
    index_maintenance_cost,
    index_query_cost,
)
from repro.analysis.models import (
    MODELS,
    SWEEP_ATTRIBUTES,
    centralized_overhead,
    centralized_seaweed_crossover,
    dht_replicated_overhead,
    logspace_sweep,
    pier_overhead,
    seaweed_overhead,
    sweep,
)
from repro.analysis.parameters import (
    GNUTELLA_CHURN,
    PIER_HOURLY_REFRESH,
    SMALL_DB,
    TABLE1,
    ModelParameters,
    table1_rows,
)
from repro.analysis.pier import PAPER_TABLE2, TABLE2_AGES, pier_availability, table2

__all__ = [
    "GNUTELLA_CHURN",
    "IndexParameters",
    "breakeven_query_rate",
    "broadcast_query_cost",
    "index_maintenance_cost",
    "index_query_cost",
    "MODELS",
    "ModelParameters",
    "PAPER_TABLE2",
    "PIER_HOURLY_REFRESH",
    "SMALL_DB",
    "SWEEP_ATTRIBUTES",
    "TABLE1",
    "TABLE2_AGES",
    "centralized_overhead",
    "centralized_seaweed_crossover",
    "dht_replicated_overhead",
    "logspace_sweep",
    "pier_availability",
    "pier_overhead",
    "seaweed_overhead",
    "sweep",
    "table1_rows",
    "table2",
]
