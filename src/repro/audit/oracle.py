"""The ground-truth oracle: omniscient conformance checking.

The oracle sits outside the protocol.  It sees every endsystem's local
database directly (something no real deployment could), so it can state
exactly what a query *should* return and compare that against what the
aggregation tree actually delivers:

* **contribution bound** — every result streamed from the root must be
  explainable as a merge of true local contributions with each
  endsystem counted at most once, so the root's row count may never
  exceed the sum of its contributors' true row counts;
* **final equality** — at audit end the root's aggregate must *exactly*
  equal the merge of the latest true contribution from every endsystem
  that learned the query while online (row counts equal, aggregate and
  per-group values equal to float tolerance — merge order may permute
  float additions);
* **predictor calibration** — the completeness the predictor claimed at
  each streamed result is compared against the completeness actually
  realized; the per-query signed final error and mean absolute error
  are exported through :mod:`repro.obs` gauges (calibration is a
  measurement, not a violation).

Hook discipline: every hook is read-only with respect to the simulation
— no events scheduled, no RNG drawn, no protocol state touched — so an
audited run is event-for-event identical to an unaudited one.  Truth
snapshots execute the query against each endsystem's
:class:`~repro.db.engine.LocalDatabase` directly, cached per database
object (profile databases are shared between endsystems unless the
system was built with ``private_databases=True``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from repro.core.query import QueryDescriptor
from repro.db.executor import QueryResult
from repro.obs.observer import Observer, active

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.system import SeaweedSystem

#: The root streamed more rows than its contributors truly hold —
#: some endsystem was counted twice.
AUDIT_CONTRIBUTION_BOUND = "contribution_bound"

#: The final root row count differs from the truth over every
#: endsystem that learned the query while online.
AUDIT_FINAL_EQUALITY = "final_equality"

#: Final aggregate values differ from truth beyond float tolerance.
AUDIT_VALUE_MISMATCH = "value_mismatch"

#: Final GROUP BY keys or per-group values differ from truth.
AUDIT_GROUP_MISMATCH = "group_mismatch"

#: Relative/absolute tolerance for float aggregate comparison: merge
#: order permutes float additions, so exact bit equality is not owed.
_REL_TOL = 1e-9
_ABS_TOL = 1e-9


def _hx(value: int) -> str:
    return format(value, "032x")


@dataclass(frozen=True)
class AuditViolation:
    """One observed breach of a conformance check."""

    check: str
    query_id: int
    detail: str
    t: float

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form for JSON reports."""
        return {
            "check": self.check,
            "query_id": _hx(self.query_id),
            "detail": self.detail,
            "t": self.t,
        }


@dataclass
class QueryAudit:
    """Everything the oracle tracks about one audited query."""

    descriptor: QueryDescriptor
    #: True local result per endsystem, snapshotted at injection time.
    truth_results: dict[int, QueryResult] = field(default_factory=dict)
    #: node_id -> time the endsystem first learned the query while online.
    learned: dict[int, float] = field(default_factory=dict)
    #: node_id -> (version, latest true local contribution).  The
    #: contribution *is* ground truth: it comes straight from the local
    #: database, so re-executions (continuous queries, live updates)
    #: supersede the injection-time snapshot.
    contributions: dict[int, tuple[int, QueryResult]] = field(default_factory=dict)
    #: (time, row_count) per root-published result, in stream order.
    root_flushes: list[tuple[float, int]] = field(default_factory=list)
    #: The most recent root-published merged result.
    last_root_result: Optional[QueryResult] = None

    @property
    def truth_total_rows(self) -> int:
        """True relevant rows across every endsystem (the population truth)."""
        return sum(result.row_count for result in self.truth_results.values())

    def contributed_truth_rows(self) -> int:
        """True rows across endsystems that actually contributed."""
        return sum(result.row_count for _, result in self.contributions.values())

    def expected_final(self) -> Optional[QueryResult]:
        """Merge of the latest true contribution per contributor.

        This is what the root must hold at audit end: every endsystem
        that learned the query while online executed it locally, so the
        contributor set is exactly the "ever online with the query known
        to them" population of the paper's delivery guarantee.
        """
        expected: Optional[QueryResult] = None
        for node_id in sorted(self.contributions):
            _, result = self.contributions[node_id]
            expected = result if expected is None else expected.merge(result)
        return expected


class GroundTruthOracle:
    """Omniscient conformance oracle attached to one deployment.

    Construct via :meth:`repro.core.system.SeaweedSystem.enable_audit`;
    hooks are invoked by the system and its nodes.  Call
    :meth:`finalize` once the run is over (ideally after every audited
    query expired) to run the final-equality checks and obtain the
    report.
    """

    def __init__(
        self, system: "SeaweedSystem", observer: Optional[Observer] = None
    ) -> None:
        self.system = system
        self._obs = active(observer)
        self.audits: dict[int, QueryAudit] = {}
        self.violations: list[AuditViolation] = []
        #: Availability bookkeeping, seeded from the current state so the
        #: oracle can be attached to a deployment that already ran.
        self.online_now: set[int] = {
            node.node_id for node in system.nodes if node.pastry.online
        }
        self.ever_online: set[int] = set(self.online_now)
        self.transitions = 0
        self._finalized: Optional[dict] = None

    # ------------------------------------------------------------------
    # Hooks (read-only; called from core/system and core/node)
    # ------------------------------------------------------------------

    def on_query_injected(self, descriptor: QueryDescriptor) -> None:
        """Snapshot the true per-endsystem result at injection time."""
        if descriptor.query_id in self.audits:
            return
        audit = QueryAudit(descriptor=descriptor)
        parsed = descriptor.parse()
        # Profile databases are shared between endsystems; execute each
        # distinct database once and fan the result out.
        per_database: dict[int, QueryResult] = {}
        for node in self.system.nodes:
            key = id(node.database)
            result = per_database.get(key)
            if result is None:
                result = node.database.execute(parsed)
                per_database[key] = result
            audit.truth_results[node.node_id] = result
        self.audits[descriptor.query_id] = audit

    def on_query_learned(self, t: float, node_id: int, query_id: int) -> None:
        """An online endsystem learned of the query (dissemination)."""
        audit = self.audits.get(query_id)
        if audit is not None and node_id not in audit.learned:
            audit.learned[node_id] = t

    def on_local_contribution(
        self,
        t: float,
        node_id: int,
        descriptor: QueryDescriptor,
        version: int,
        result: QueryResult,
    ) -> None:
        """An endsystem executed the query locally and submitted it."""
        audit = self.audits.get(descriptor.query_id)
        if audit is None:
            return
        previous = audit.contributions.get(node_id)
        if previous is None or version >= previous[0]:
            audit.contributions[node_id] = (version, result)
        audit.learned.setdefault(node_id, t)

    def on_root_result(
        self, t: float, node_id: int, descriptor: QueryDescriptor, merged: QueryResult
    ) -> None:
        """The root published an updated merged result — check the bound."""
        audit = self.audits.get(descriptor.query_id)
        if audit is None:
            return
        audit.root_flushes.append((t, merged.row_count))
        audit.last_root_result = merged
        bound = audit.contributed_truth_rows()
        if merged.row_count > bound:
            self._violation(
                AUDIT_CONTRIBUTION_BOUND,
                audit,
                f"root streamed {merged.row_count} rows but contributors "
                f"truly hold {bound} — an endsystem was double-counted",
                t=t,
            )

    def on_transition(self, t: float, node_id: int, goes_up: bool) -> None:
        """An endsystem changed availability."""
        self.transitions += 1
        if goes_up:
            self.online_now.add(node_id)
            self.ever_online.add(node_id)
        else:
            self.online_now.discard(node_id)

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------

    def finalize(self) -> dict:
        """Run the end-state checks and return the audit report.

        Idempotent: a second call returns the same report without
        re-running checks or re-emitting violations.
        """
        if self._finalized is not None:
            return self._finalized
        now = self.system.sim.now
        queries: dict[str, dict] = {}
        for query_id in sorted(self.audits):
            audit = self.audits[query_id]
            queries[_hx(query_id)] = self._finalize_query(audit, now)
        report = {
            "queries": queries,
            "endsystems_ever_online": len(self.ever_online),
            "transitions_observed": self.transitions,
            "violation_count": len(self.violations),
            "violations": [violation.to_dict() for violation in self.violations],
            "ok": not self.violations,
        }
        self._finalized = report
        return report

    def _finalize_query(self, audit: QueryAudit, now: float) -> dict:
        descriptor = audit.descriptor
        expected = audit.expected_final()
        expected_rows = expected.row_count if expected is not None else 0
        actual = audit.last_root_result
        actual_rows = actual.row_count if actual is not None else 0

        if actual_rows != expected_rows:
            self._violation(
                AUDIT_FINAL_EQUALITY,
                audit,
                f"final root rows {actual_rows} != truth {expected_rows} over "
                f"{len(audit.contributions)} contributing endsystem(s)",
                t=now,
            )
        elif expected is not None and actual is not None:
            self._check_values(audit, expected, actual, now)

        calibration = self._calibrate(audit, expected_rows, now)
        return {
            "sql": descriptor.sql,
            "truth_rows_population": audit.truth_total_rows,
            "truth_rows_contributed": expected_rows,
            "contributors": len(audit.contributions),
            "learned_endsystems": len(audit.learned),
            "root_rows_final": actual_rows,
            "root_flushes": len(audit.root_flushes),
            "calibration": calibration,
        }

    def _check_values(
        self, audit: QueryAudit, expected: QueryResult, actual: QueryResult, now: float
    ) -> None:
        """Final aggregate and per-group values must match to tolerance."""
        for index, (want, got) in enumerate(zip(expected.values(), actual.values())):
            if not _close(want, got):
                self._violation(
                    AUDIT_VALUE_MISMATCH,
                    audit,
                    f"aggregate #{index} final value {got!r} != truth {want!r}",
                    t=now,
                )
        want_groups = expected.group_values()
        got_groups = actual.group_values()
        if set(want_groups) != set(got_groups):
            missing = len(set(want_groups) - set(got_groups))
            spurious = len(set(got_groups) - set(want_groups))
            self._violation(
                AUDIT_GROUP_MISMATCH,
                audit,
                f"final GROUP BY keys differ from truth "
                f"({missing} missing, {spurious} spurious)",
                t=now,
            )
            return
        for key in want_groups:
            for index, (want, got) in enumerate(
                zip(want_groups[key], got_groups[key])
            ):
                if not _close(want, got):
                    self._violation(
                        AUDIT_GROUP_MISMATCH,
                        audit,
                        f"group {key!r} aggregate #{index} final value "
                        f"{got!r} != truth {want!r}",
                        t=now,
                    )

    def _calibrate(
        self, audit: QueryAudit, truth_rows: int, now: float
    ) -> Optional[dict]:
        """Predictor claims vs realized completeness (gauges, not checks)."""
        status = self.system.status_of(audit.descriptor)
        predictor = status.predictor if status is not None else None
        if predictor is None or not audit.root_flushes:
            return None
        injected_at = audit.descriptor.injected_at
        errors = []
        for t, rows in audit.root_flushes:
            claimed = predictor.completeness_at(t - injected_at)
            realized = min(1.0, rows / truth_rows) if truth_rows else 1.0
            errors.append(claimed - realized)
        final_rows = audit.root_flushes[-1][1]
        final_claimed = predictor.completeness_at(now - injected_at)
        final_realized = min(1.0, final_rows / truth_rows) if truth_rows else 1.0
        final_error = final_claimed - final_realized
        mean_abs_error = sum(abs(error) for error in errors) / len(errors)
        if self._obs is not None:
            self._obs.audit_calibration(
                audit.descriptor.query_id, final_error, mean_abs_error
            )
        return {
            "final_claimed": final_claimed,
            "final_realized": final_realized,
            "final_error": final_error,
            "mean_abs_error": mean_abs_error,
            "samples": len(errors),
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _violation(
        self, check: str, audit: QueryAudit, detail: str, t: float
    ) -> None:
        violation = AuditViolation(
            check=check, query_id=audit.descriptor.query_id, detail=detail, t=t
        )
        self.violations.append(violation)
        if self._obs is not None:
            self._obs.audit_violation(t, check, audit.descriptor.query_id, detail)


def _close(want: Optional[float], got: Optional[float]) -> bool:
    """Equality for final aggregate values (None is SQL NULL)."""
    if want is None or got is None:
        return want is None and got is None
    return math.isclose(want, got, rel_tol=_REL_TOL, abs_tol=_ABS_TOL)
