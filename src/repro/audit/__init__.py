"""Ground-truth conformance auditing for Seaweed deployments.

:mod:`repro.audit` runs an omniscient oracle alongside any simulation:
it snapshots every endsystem's true query-relevant rows at injection
time, watches availability transitions and local contributions through
read-only hooks, and checks that what the aggregation tree streams to
the root is a subset-merge of true contributions with each endsystem
counted at most once — and that the final aggregate exactly equals the
truth over every endsystem that learned the query while online.

Attach with :meth:`repro.core.system.SeaweedSystem.enable_audit`; the
oracle never schedules events or draws randomness, so an audited run is
event-for-event identical to an unaudited one.
"""

from repro.audit.oracle import (
    AUDIT_CONTRIBUTION_BOUND,
    AUDIT_FINAL_EQUALITY,
    AUDIT_GROUP_MISMATCH,
    AUDIT_VALUE_MISMATCH,
    AuditViolation,
    GroundTruthOracle,
    QueryAudit,
)

__all__ = [
    "AUDIT_CONTRIBUTION_BOUND",
    "AUDIT_FINAL_EQUALITY",
    "AUDIT_GROUP_MISMATCH",
    "AUDIT_VALUE_MISMATCH",
    "AuditViolation",
    "GroundTruthOracle",
    "QueryAudit",
]
